"""Typed algorithm registry: the single source of algorithm names + dispatch.

Every entry point that picks an algorithm by name — the CLI, the figure
sweeps (:mod:`repro.experiments`), the DES replay and the online
scheduler — resolves it here.  Each :class:`Algorithm` couples the
canonical display name (used verbatim in figure legends and CLI choices)
with two factories:

- ``evaluate(scenario, context)`` → :class:`AlgorithmResult`, the Section V
  metric bundle the experiment harness consumes, and
- ``assign(system, tasks, context)`` → :class:`~repro.core.assignment.Assignment`,
  the raw decision vector used by the online scheduler and the DES replay
  (absent for pipelines without a meaningful holistic assignment).

Capability flags (``holistic`` / ``divisible`` / ``baseline`` / ``exact``)
describe what the algorithm can consume, and ``in_figures`` marks the paper's
Section V-B competitor set.  Lookup is case-insensitive and accepts
per-algorithm aliases (``"cloud"`` → AllToC, ``"workload"`` → DTA-Workload),
so the online policy keys and the DTA objective spellings resolve to the
same entries as the legend names.

Configuration travels alongside as an explicit
:class:`~repro.context.RunContext` — never via process-global flags — so a
registry call behaves identically in-process, in fork workers and in spawn
workers.

Evaluators signal *configuration* errors (an unknown algorithm name, a
profile an algorithm cannot consume) by raising ``ValueError`` /
``TypeError``.  The crash-safe sweep runtime (:mod:`repro.runtime`)
relies on that convention: those two types are classified as config
errors and re-raised immediately — never retried or quarantined —
because retrying a deterministic misconfiguration only wastes the retry
budget and hides the real message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.context import RunContext, current_context, use_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.baselines import (
    all_offload,
    all_to_cloud,
    hgos,
    local_first,
    random_assignment,
)
from repro.core.costs import ClusterCosts, cluster_costs
from repro.core.exact import branch_and_bound_hta
from repro.core.game import best_response_offloading
from repro.core.hta import lp_hta, lp_hta_batch
from repro.core.task import Task
from repro.dta.accounting import evaluate_plans, prepare_dta, run_dta
from repro.system.topology import MECSystem
from repro.workload.generator import Scenario

__all__ = [
    "ALL_OFFLOAD",
    "ALL_TO_CLOUD",
    "Algorithm",
    "AlgorithmResult",
    "BNB_EXACT",
    "DTA_NUMBER",
    "DTA_WORKLOAD",
    "GAME",
    "HGOS_NAME",
    "LOCAL_FIRST",
    "LP_HTA",
    "RANDOM",
    "algorithms",
    "get",
    "names",
    "register",
    "resolve_assignment",
    "run",
    "run_batch",
]

# Canonical display names — the only place these strings are spelled out.
LP_HTA = "LP-HTA"
HGOS_NAME = "HGOS"
ALL_TO_CLOUD = "AllToC"
ALL_OFFLOAD = "AllOffload"
DTA_WORKLOAD = "DTA-Workload"
DTA_NUMBER = "DTA-Number"
GAME = "Game"
LOCAL_FIRST = "LocalFirst"
RANDOM = "Random"
BNB_EXACT = "BnB-Exact"


@dataclass(frozen=True)
class AlgorithmResult:
    """The metrics Section V plots, for one algorithm on one scenario.

    :param name: algorithm name as used in the figures.
    :param total_energy_j: total system energy (Figs 2, 5).
    :param mean_latency_s: average task latency (Fig 4).
    :param unsatisfied_rate: deadline-miss/cancel fraction (Fig 3).
    :param processing_time_s: parallel makespan (Fig 6a; holistic
        algorithms report their max task latency).
    :param involved_devices: devices executing tasks (Fig 6b).
    """

    name: str
    total_energy_j: float
    mean_latency_s: float
    unsatisfied_rate: float
    processing_time_s: float
    involved_devices: int


EvaluateFn = Callable[[Scenario, RunContext], AlgorithmResult]
EvaluateBatchFn = Callable[
    [Sequence[Scenario], RunContext], Sequence[AlgorithmResult]
]
AssignFn = Callable[[MECSystem, Sequence[Task], RunContext], Assignment]


@dataclass(frozen=True)
class Algorithm:
    """One registered task-assignment algorithm.

    :param name: canonical display name (figure legends, CLI choices).
    :param summary: one-line description for ``--help`` style listings.
    :param evaluate: scenario → Section V metrics under a context.
    :param evaluate_batch: many scenarios → metrics in one call; present
        only for algorithms whose LP work can pool into a block-diagonal
        mega-solve (see :func:`repro.core.hta.lp_hta_batch`).  Must return
        exactly what ``[evaluate(s, ctx) for s in scenarios]`` would.
    :param assign: (system, tasks) → raw assignment under a context;
        ``None`` for pipelines that have no single holistic assignment.
    :param holistic: consumes holistic (indivisible) task scenarios.
    :param divisible: consumes divisible scenarios (catalog + ownership).
    :param baseline: a comparison scheme rather than a contribution.
    :param exact: computes a provably optimal assignment.
    :param in_figures: part of the paper's Section V-B competitor set.
    :param aliases: extra lookup keys (case-insensitive).
    """

    name: str
    summary: str
    evaluate: EvaluateFn
    evaluate_batch: Optional[EvaluateBatchFn] = None
    assign: Optional[AssignFn] = None
    holistic: bool = False
    divisible: bool = False
    baseline: bool = False
    exact: bool = False
    in_figures: bool = False
    aliases: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def key(self) -> str:
        """The canonical (normalised) lookup key."""
        return _normalise(self.name)


_REGISTRY: Dict[str, Algorithm] = {}
#: Canonical-name index, in registration order (drives listings).
_BY_NAME: "Dict[str, Algorithm]" = {}


def _normalise(name: str) -> str:
    return name.strip().lower()


def register(algorithm: Algorithm) -> Algorithm:
    """Add an algorithm to the registry.

    :param algorithm: the entry to add.
    :raises ValueError: when its name or an alias is already taken.
    """
    keys = [algorithm.key, *(_normalise(a) for a in algorithm.aliases)]
    for key in keys:
        if key in _REGISTRY:
            raise ValueError(
                f"algorithm key {key!r} is already registered "
                f"(by {_REGISTRY[key].name!r})"
            )
    for key in keys:
        _REGISTRY[key] = algorithm
    _BY_NAME[algorithm.name] = algorithm
    return algorithm


def get(name: str) -> Algorithm:
    """Look an algorithm up by display name or alias (case-insensitive).

    :param name: e.g. ``"LP-HTA"``, ``"lp-hta"`` or an alias like
        ``"cloud"``.
    :raises ValueError: for unknown names, listing every valid one.
    """
    algorithm = _REGISTRY.get(_normalise(name))
    if algorithm is None:
        raise ValueError(
            f"unknown algorithm {name!r}; choose from {sorted(_BY_NAME)}"
        )
    return algorithm


def algorithms(
    *,
    holistic: Optional[bool] = None,
    divisible: Optional[bool] = None,
    baseline: Optional[bool] = None,
    exact: Optional[bool] = None,
    in_figures: Optional[bool] = None,
    assignable: Optional[bool] = None,
) -> Tuple[Algorithm, ...]:
    """Registered algorithms matching every given flag, in registration order.

    :param assignable: require (or exclude) an ``assign`` factory.
    """
    out: List[Algorithm] = []
    for algorithm in _BY_NAME.values():
        if holistic is not None and algorithm.holistic != holistic:
            continue
        if divisible is not None and algorithm.divisible != divisible:
            continue
        if baseline is not None and algorithm.baseline != baseline:
            continue
        if exact is not None and algorithm.exact != exact:
            continue
        if in_figures is not None and algorithm.in_figures != in_figures:
            continue
        if assignable is not None and (algorithm.assign is not None) != assignable:
            continue
        out.append(algorithm)
    return tuple(out)


def names(**filters: Optional[bool]) -> Tuple[str, ...]:
    """Display names of :func:`algorithms` matching ``filters``."""
    return tuple(a.name for a in algorithms(**filters))


def run(
    name: str, scenario: Scenario, context: Optional[RunContext] = None
) -> AlgorithmResult:
    """Evaluate one algorithm by name on a scenario.

    :param name: display name or alias.
    :param scenario: the generated scenario.
    :param context: run configuration; defaults to the active context.
    """
    algorithm = get(name)
    ctx = context if context is not None else current_context()
    with use_context(ctx):
        return algorithm.evaluate(scenario, ctx)


def run_batch(
    name: str,
    scenarios: Sequence[Scenario],
    context: Optional[RunContext] = None,
) -> List[AlgorithmResult]:
    """Evaluate one algorithm on many scenarios, batching when possible.

    When the algorithm has an ``evaluate_batch`` factory and the context
    allows batching (``lp_batch`` on, not reference mode), all scenarios'
    LP work pools into one block-diagonal mega-solve; otherwise this is
    exactly ``[run(name, s, context) for s in scenarios]``.  Either way
    the results are identical scenario for scenario.

    :param name: display name or alias.
    :param scenarios: the generated scenarios, evaluated in order.
    :param context: run configuration; defaults to the active context.
    """
    algorithm = get(name)
    ctx = context if context is not None else current_context()
    with use_context(ctx):
        if (
            algorithm.evaluate_batch is not None
            and len(scenarios) > 1
            and ctx.lp_batch
            and not ctx.reference
        ):
            return list(algorithm.evaluate_batch(scenarios, ctx))
        return [algorithm.evaluate(scenario, ctx) for scenario in scenarios]


def resolve_assignment(
    name: str,
    system: MECSystem,
    tasks: Sequence[Task],
    context: Optional[RunContext] = None,
) -> Assignment:
    """Produce one algorithm's raw assignment by name.

    :param name: display name or alias.
    :param system: the MEC system.
    :param tasks: the tasks to assign.
    :param context: run configuration; defaults to the active context.
    :raises ValueError: when the algorithm has no assignment form.
    """
    algorithm = get(name)
    if algorithm.assign is None:
        raise ValueError(
            f"algorithm {algorithm.name!r} does not produce a holistic "
            f"assignment; choose from {sorted(names(assignable=True))}"
        )
    ctx = context if context is not None else current_context()
    with use_context(ctx):
        return algorithm.assign(system, tasks, ctx)


# ---------------------------------------------------------------------------
# Concrete wiring
# ---------------------------------------------------------------------------


def _from_assignment(name: str, assignment: Assignment) -> AlgorithmResult:
    stats = assignment.stats()
    return AlgorithmResult(
        name=name,
        total_energy_j=stats.total_energy_j,
        mean_latency_s=stats.mean_latency_s,
        unsatisfied_rate=stats.unsatisfied_rate,
        processing_time_s=stats.max_latency_s,
        involved_devices=assignment.involved_devices(),
    )


def _evaluate_via_assign(
    name: str, assign: AssignFn
) -> EvaluateFn:
    def evaluate(scenario: Scenario, context: RunContext) -> AlgorithmResult:
        return _from_assignment(
            name, assign(scenario.system, list(scenario.tasks), context)
        )

    return evaluate


def _assign_lp_hta(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    if context.shards > 0 and not context.reference:
        # Sharded execution strategy: bit-identical output (the cloud is
        # uncapped, so shards never couple), different solve grouping.
        from repro.core.sharded import lp_hta_sharded

        return lp_hta_sharded(system, list(tasks), context=context).assignment
    return lp_hta(system, list(tasks), context=context).assignment


def _evaluate_lp_hta_batch(
    scenarios: Sequence[Scenario], context: RunContext
) -> List[AlgorithmResult]:
    """Batch form of LP-HTA evaluation: one mega-solve across scenarios."""
    if context.shards > 0 and not context.reference:
        # The sharded path groups blocks per scenario (shard views pool
        # into their own mega-solve); results stay bit-identical.
        return [
            _from_assignment(
                LP_HTA, _assign_lp_hta(s.system, list(s.tasks), context)
            )
            for s in scenarios
        ]
    reports = lp_hta_batch(
        [(s.system, list(s.tasks)) for s in scenarios], context=context
    )
    return [_from_assignment(LP_HTA, report.assignment) for report in reports]


def _assign_hgos(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return hgos(system, list(tasks), context=context)


def _assign_all_to_cloud(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return all_to_cloud(system, list(tasks))


def _assign_all_offload(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return all_offload(system, list(tasks))


def _assign_game(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return best_response_offloading(system, list(tasks)).assignment


def _assign_local_first(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return local_first(system, list(tasks))


def _assign_random(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    return random_assignment(system, list(tasks), seed=context.seed)


def _assign_bnb_exact(
    system: MECSystem, tasks: Sequence[Task], context: RunContext
) -> Assignment:
    """Per-cluster branch-and-bound optimum (small instances only).

    Clusters decouple exactly as in LP-HTA, so each is solved to optimality
    independently and the decisions are stitched back together.

    :raises ValueError: when a cluster has no feasible full assignment
        (exact search does not cancel tasks).
    """
    costs = cluster_costs(system, tasks)
    by_cluster: Dict[int, List[int]] = {}
    for row, task in enumerate(tasks):
        by_cluster.setdefault(system.cluster_of(task.owner_device_id), []).append(row)

    decisions: List[Subsystem] = [Subsystem.CANCELLED] * len(tasks)
    for station_id in sorted(by_cluster):
        rows = by_cluster[station_id]
        sub_costs = ClusterCosts(
            tasks=tuple(costs.tasks[r] for r in rows),
            time_s=costs.time_s[rows],
            energy_j=costs.energy_j[rows],
            resource=costs.resource[rows],
            deadline_s=costs.deadline_s[rows],
        )
        device_caps = {
            device_id: system.device(device_id).max_resource
            for device_id in {t.owner_device_id for t in sub_costs.tasks}
        }
        optimal = branch_and_bound_hta(
            sub_costs, device_caps, system.station(station_id).max_resource
        )
        if optimal is None:
            raise ValueError(
                f"cluster {station_id} has no feasible full assignment; "
                "the exact search cannot cancel tasks"
            )
        for local_row, decision in zip(rows, optimal.decisions):
            decisions[local_row] = decision
    return Assignment(costs, decisions)


def _dta_result(name: str, outcome: "object") -> AlgorithmResult:
    stats = outcome.assignment.stats()  # type: ignore[attr-defined]
    return AlgorithmResult(
        name=name,
        total_energy_j=outcome.total_energy_j,  # type: ignore[attr-defined]
        mean_latency_s=stats.mean_latency_s,
        unsatisfied_rate=stats.unsatisfied_rate,
        processing_time_s=outcome.processing_time_s,  # type: ignore[attr-defined]
        involved_devices=outcome.involved_devices,  # type: ignore[attr-defined]
    )


def _evaluate_dta(name: str, objective: str) -> EvaluateFn:
    def evaluate(scenario: Scenario, context: RunContext) -> AlgorithmResult:
        if scenario.catalog is None or scenario.ownership is None:
            raise ValueError("DTA needs a divisible scenario (catalog + ownership)")
        outcome = run_dta(
            scenario.system,
            list(scenario.tasks),
            scenario.ownership,
            scenario.catalog,
            objective=objective,  # type: ignore[arg-type]
            context=context,
        )
        return _dta_result(name, outcome)

    return evaluate


def _evaluate_dta_batch(name: str, objective: str) -> EvaluateBatchFn:
    """Batch form of DTA evaluation: prepare every plan combinatorially,
    then clear all sub-task schedules in one LP-HTA mega-solve."""

    def evaluate_batch(
        scenarios: Sequence[Scenario], context: RunContext
    ) -> List[AlgorithmResult]:
        jobs = []
        for scenario in scenarios:
            if scenario.catalog is None or scenario.ownership is None:
                raise ValueError(
                    "DTA needs a divisible scenario (catalog + ownership)"
                )
            plan = prepare_dta(
                list(scenario.tasks),
                scenario.ownership,
                scenario.catalog,
                objective=objective,  # type: ignore[arg-type]
            )
            jobs.append((scenario.system, plan, scenario.catalog))
        outcomes = evaluate_plans(jobs, context=context)
        return [_dta_result(name, outcome) for outcome in outcomes]

    return evaluate_batch


#: Maps each DTA display name to its ``run_dta`` objective keyword.
DTA_OBJECTIVES: Mapping[str, str] = {
    DTA_WORKLOAD: "workload",
    DTA_NUMBER: "number",
}

register(
    Algorithm(
        name=LP_HTA,
        summary="the paper's LP relax-round-repair approximation (Sec. III)",
        evaluate=_evaluate_via_assign(LP_HTA, _assign_lp_hta),
        evaluate_batch=_evaluate_lp_hta_batch,
        assign=_assign_lp_hta,
        holistic=True,
        in_figures=True,
    )
)
register(
    Algorithm(
        name=HGOS_NAME,
        summary="data- and deadline-blind greedy offloading of [12]",
        evaluate=_evaluate_via_assign(HGOS_NAME, _assign_hgos),
        assign=_assign_hgos,
        holistic=True,
        baseline=True,
        in_figures=True,
    )
)
register(
    Algorithm(
        name=ALL_TO_CLOUD,
        summary="every task on the remote cloud",
        evaluate=_evaluate_via_assign(ALL_TO_CLOUD, _assign_all_to_cloud),
        assign=_assign_all_to_cloud,
        holistic=True,
        baseline=True,
        in_figures=True,
        aliases=("cloud",),
    )
)
register(
    Algorithm(
        name=ALL_OFFLOAD,
        summary="stations first (greedy by cap), overflow to the cloud",
        evaluate=_evaluate_via_assign(ALL_OFFLOAD, _assign_all_offload),
        assign=_assign_all_offload,
        holistic=True,
        baseline=True,
        in_figures=True,
    )
)
register(
    Algorithm(
        name=DTA_WORKLOAD,
        summary="divisible tasks, workload-balancing data division (Sec. IV-A)",
        evaluate=_evaluate_dta(DTA_WORKLOAD, DTA_OBJECTIVES[DTA_WORKLOAD]),
        evaluate_batch=_evaluate_dta_batch(
            DTA_WORKLOAD, DTA_OBJECTIVES[DTA_WORKLOAD]
        ),
        divisible=True,
        in_figures=True,
        aliases=("workload",),
    )
)
register(
    Algorithm(
        name=DTA_NUMBER,
        summary="divisible tasks, device-minimising data division (Sec. IV-B)",
        evaluate=_evaluate_dta(DTA_NUMBER, DTA_OBJECTIVES[DTA_NUMBER]),
        evaluate_batch=_evaluate_dta_batch(DTA_NUMBER, DTA_OBJECTIVES[DTA_NUMBER]),
        divisible=True,
        in_figures=True,
        aliases=("number",),
    )
)
register(
    Algorithm(
        name=GAME,
        summary="best-response dynamics to a Nash equilibrium (extension)",
        evaluate=_evaluate_via_assign(GAME, _assign_game),
        assign=_assign_game,
        holistic=True,
        baseline=True,
    )
)
register(
    Algorithm(
        name=LOCAL_FIRST,
        summary="deadline/resource-aware greedy: device, station, cloud",
        evaluate=_evaluate_via_assign(LOCAL_FIRST, _assign_local_first),
        assign=_assign_local_first,
        holistic=True,
        baseline=True,
    )
)
register(
    Algorithm(
        name=RANDOM,
        summary="uniformly random subsystem per task (constraint-blind)",
        evaluate=_evaluate_via_assign(RANDOM, _assign_random),
        assign=_assign_random,
        holistic=True,
        baseline=True,
    )
)
register(
    Algorithm(
        name=BNB_EXACT,
        summary="per-cluster branch-and-bound optimum (small instances)",
        evaluate=_evaluate_via_assign(BNB_EXACT, _assign_bnb_exact),
        assign=_assign_bnb_exact,
        holistic=True,
        exact=True,
    )
)
