"""Fault injection and recovery for the MEC control plane.

:mod:`repro.faults.model` samples seeded stochastic fault plans (link
outages, device departures, station crashes); :mod:`repro.faults.recovery`
detects the failures those plans cause in a planned epoch (via the DES
replay) and applies pluggable recovery policies.  See docs/robustness.md.
"""

from repro.faults.model import (
    FaultConfig,
    FaultPlan,
    generate_fault_plan,
    shift_windows,
)
from repro.faults.recovery import (
    RECOVERY_POLICIES,
    RecoveryEvent,
    RecoveryOptions,
    RecoveryOutcome,
    ThreatReport,
    apply_recovery,
    detect_threats,
    surviving_system,
)

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "RECOVERY_POLICIES",
    "RecoveryEvent",
    "RecoveryOptions",
    "RecoveryOutcome",
    "ThreatReport",
    "apply_recovery",
    "detect_threats",
    "generate_fault_plan",
    "shift_windows",
    "surviving_system",
]
