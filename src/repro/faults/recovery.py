"""Recovery policies for mid-flight failures detected by the DES replay.

The online scheduler plans each epoch against the quasi-static snapshot;
the fault plan then hits the planned schedule with link outages, device
departures and station crashes.  :func:`detect_threats` replays the epoch
on the event kernel — once healthy, once under the epoch's outage windows
— and classifies every endangered task.  :func:`apply_recovery` then runs
one of the pluggable policies over the threatened set:

- ``none`` — fail-stop baseline: a task interrupted by a failure is
  abandoned; the work already spent is wasted and the request must still
  be served, so it is re-executed late over the always-available
  AllToC-style cloud path (the :math:`e_{BC}` terms of Section II-B,
  exactly what :func:`repro.core.baselines.all_to_cloud` charges).  The
  task counts as unsatisfied.
- ``retry`` — re-request the failed link: the transfer restarts after
  each outage window with exponential backoff, re-paying the path's
  transmission energy (Sec. II-B) once per attempt, bounded by a retry
  budget.  Succeeds when the deferred finish still meets the deadline and
  the retransmission energy undercuts the cloud re-execution.
- ``degrade`` — degrade-to-cloud: abandon the original path and fall back
  to the cloud, paying the same energy as the fail-stop baseline (wasted
  attempt + cloud re-execution) but *before* the deadline when the WAN
  allows; the realized finish is measured by replaying the degraded
  decisions under the same outage windows.
- ``reassign`` — re-run the LP-HTA repair step over only the surviving
  devices and stations (departed devices removed, crashed stations'
  clusters re-attached), re-planning just the threatened tasks; the
  context's LP solve cache (:mod:`repro.caching.lp_cache`) makes repeated
  repair solves cheap.  A repaired decision is accepted only when its
  replayed finish meets the deadline and its energy undercuts the cloud
  re-execution.

**Accounting invariants** (what the resilience experiment's bounds rest
on): every event carries ``extra_energy_j``, the row's realized energy
minus its planned energy, so an epoch's realized energy is exactly
``planned + Σ extras``.  A failed recovery costs the same as the
fail-stop baseline, and a successful one is accepted only when cheaper —
hence every policy's realized energy and miss count are ≤ the
no-recovery baseline on the same fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.context import RunContext, current_context
from repro.core.assignment import Assignment, Subsystem
from repro.core.costs import task_costs
from repro.core.hta import lp_hta
from repro.core.task import Task
from repro.des.replay import RealizedMetrics, replay_assignment
from repro.obs.tracer import staged, traced
from repro.system.topology import MECSystem

__all__ = [
    "RECOVERY_POLICIES",
    "RecoveryEvent",
    "RecoveryOptions",
    "RecoveryOutcome",
    "ThreatReport",
    "apply_recovery",
    "detect_threats",
    "surviving_system",
]

#: Accepted recovery policy keys, in documentation order.
RECOVERY_POLICIES: Tuple[str, ...] = ("none", "retry", "degrade", "reassign")

_CLOUD_COL = Subsystem.CLOUD.column
_LATENCY_TOLERANCE = 1e-9


@dataclass(frozen=True)
class RecoveryOptions:
    """Tunables of the recovery policies.

    :param retry_budget: maximum link re-requests per task before the
        retry policy gives up.
    :param backoff_base_s: base of the exponential backoff — attempt *k*
        waits ``backoff_base_s * 2**(k-1)`` before re-requesting, so *n*
        attempts add ``backoff_base_s * (2**n - 1)`` of delay.
    """

    retry_budget: int = 3
    backoff_base_s: float = 0.05

    def __post_init__(self) -> None:
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")


@dataclass(frozen=True)
class RecoveryEvent:
    """One fault-and-response record (the telemetry/trace unit).

    :param epoch: epoch index the fault hit.
    :param task_id: the (owner, index) pair of the affected task.
    :param row: row in the epoch's planned batch (``-1`` for tasks dropped
        before planning because their owner had already departed).
    :param kind: what failed — ``"departure"`` (owner left),
        ``"data-loss"`` (external-data holder left), ``"crash"`` (serving
        station crashed) or ``"outage"`` (a link outage deferred the task
        past usefulness).
    :param action: the recovery action taken (``"drop"``, ``"none"``,
        ``"retry"``, ``"degrade"``, ``"reassign"``).
    :param recovered: whether the task still met its deadline.
    :param extra_energy_j: realized minus planned energy for this row
        (negative for drops — the planned energy was never spent).
    """

    epoch: int
    task_id: Tuple[int, int]
    row: int
    kind: str
    action: str
    recovered: bool
    extra_energy_j: float

    def as_tuple(self) -> tuple:
        """Canonical trace entry (what the bit-identity CI job diffs)."""
        return (
            self.epoch,
            self.task_id,
            self.row,
            self.kind,
            self.action,
            self.recovered,
            self.extra_energy_j,
        )


@dataclass(frozen=True)
class ThreatReport:
    """What the detection replay found for one epoch.

    :param healthy: replay metrics with no fault injected.
    :param faulty: replay metrics under the epoch's outage windows.
    :param dropped_rows: assigned rows whose owner departed mid-epoch.
    :param data_loss_rows: rows whose external-data holder departed.
    :param crash_rows: rows assigned to a crashed station (and on track to
        meet their deadline before the crash).
    :param outage_rows: rows whose outage-deferred finish breaks a
        deadline they would otherwise have met, or defers them at all —
        any row the outages touched.
    """

    healthy: RealizedMetrics
    faulty: RealizedMetrics
    dropped_rows: Tuple[int, ...]
    data_loss_rows: Tuple[int, ...]
    crash_rows: Tuple[int, ...]
    outage_rows: Tuple[int, ...]

    @property
    def threatened_rows(self) -> Tuple[int, ...]:
        """Rows a recovery policy can still act on, in row order."""
        return tuple(sorted((*self.crash_rows, *self.outage_rows)))

    @property
    def any_faults(self) -> bool:
        """Whether this epoch was touched by the fault plan at all."""
        return bool(
            self.dropped_rows
            or self.data_loss_rows
            or self.crash_rows
            or self.outage_rows
        )


@dataclass(frozen=True)
class RecoveryOutcome:
    """The net effect of one epoch's faults after a recovery policy ran.

    :param events: one event per affected row, in row order.
    :param extra_energy_j: Σ event extras — the epoch's realized energy is
        its planned energy plus this.
    :param unsatisfied_rows: batch rows the faults made (or left)
        unsatisfied despite recovery.
    :param recovered_rows: batch rows recovery saved.
    """

    events: Tuple[RecoveryEvent, ...]
    extra_energy_j: float
    unsatisfied_rows: FrozenSet[int]
    recovered_rows: FrozenSet[int]

    @property
    def counts(self) -> Dict[str, int]:
        """Event counts keyed by action (for telemetry/tests)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.action] = out.get(event.action, 0) + 1
        return out


@traced("faults.detect")
def detect_threats(
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    backhaul_outages: Sequence[Tuple[float, float]] = (),
    wan_outages: Sequence[Tuple[float, float]] = (),
    departed: FrozenSet[int] = frozenset(),
    crashed: FrozenSet[int] = frozenset(),
    start_times: Optional[Sequence[float]] = None,
) -> ThreatReport:
    """Replay one epoch healthy and faulty, and classify endangered tasks.

    Classification is exclusive and checked in severity order: a departed
    owner beats a lost data source beats a crashed station beats a link
    outage.  Planner-cancelled rows and rows that were already going to
    miss their deadline are never threatened — recovery cannot un-plan a
    bad plan, only shield a good one from failures.

    :param system: the (plan-time) MEC system.
    :param tasks: the epoch batch, in assignment row order.
    :param assignment: the planned decisions.
    :param backhaul_outages: epoch-relative BS–BS outage windows.
    :param wan_outages: epoch-relative BS–cloud outage windows.
    :param departed: devices gone by the end of the epoch.
    :param crashed: stations crashed by the end of the epoch.
    :param start_times: per-row epoch-relative launch times (the task's
        arrival offset within the epoch); defaults to launching at 0.
    """
    healthy = replay_assignment(system, tasks, assignment, start_times=start_times)
    faulty = replay_assignment(
        system,
        tasks,
        assignment,
        backhaul_outages=tuple(backhaul_outages),
        wan_outages=tuple(wan_outages),
        start_times=start_times,
    )

    dropped: List[int] = []
    data_loss: List[int] = []
    crash: List[int] = []
    outage: List[int] = []
    for row, task in enumerate(tasks):
        decision = assignment.decisions[row]
        if decision is Subsystem.CANCELLED:
            continue
        if task.owner_device_id in departed:
            dropped.append(row)
            continue
        if task.external_source is not None and task.external_source in departed:
            data_loss.append(row)
            continue
        deadline = float(assignment.costs.deadline_s[row])
        healthy_latency = healthy.latencies_s[row]
        if healthy_latency is None or healthy_latency > deadline:
            continue  # a planned miss, not a fault
        if (
            decision is Subsystem.STATION
            and system.cluster_of(task.owner_device_id) in crashed
        ):
            crash.append(row)
            continue
        faulty_latency = faulty.latencies_s[row]
        if (
            faulty_latency is not None
            and faulty_latency > healthy_latency + _LATENCY_TOLERANCE
        ):
            outage.append(row)

    return ThreatReport(
        healthy=healthy,
        faulty=faulty,
        dropped_rows=tuple(dropped),
        data_loss_rows=tuple(data_loss),
        crash_rows=tuple(crash),
        outage_rows=tuple(outage),
    )


def surviving_system(
    system: MECSystem,
    departed: FrozenSet[int] = frozenset(),
    crashed: FrozenSet[int] = frozenset(),
) -> Optional[MECSystem]:
    """The system with departed devices and crashed stations removed.

    Devices of a crashed cluster are re-attached to the lowest-id
    surviving station (the deterministic stand-in for a re-association
    sweep).  Returns ``None`` when no station or no device survives —
    nothing is left to reassign onto.
    """
    stations = [s for sid, s in system.stations.items() if sid not in crashed]
    devices = [d for did, d in system.devices.items() if did not in departed]
    if not stations or not devices:
        return None
    fallback = min(s.station_id for s in stations)
    surviving_ids = {s.station_id for s in stations}
    attachment = {}
    for device in devices:
        home = system.cluster_of(device.device_id)
        attachment[device.device_id] = home if home in surviving_ids else fallback
    return MECSystem(
        devices=devices,
        stations=stations,
        attachment=attachment,
        cloud=system.cloud,
        bs_bs_link=system.bs_bs_link,
        bs_cloud_link=system.bs_cloud_link,
        parameters=system.parameters,
    )


def _relevant_windows(
    system: MECSystem,
    task: Task,
    decision: Subsystem,
    backhaul_outages: Sequence[Tuple[float, float]],
    wan_outages: Sequence[Tuple[float, float]],
) -> Tuple[Tuple[float, float], ...]:
    """The outage windows the task's path can actually collide with."""
    windows: List[Tuple[float, float]] = []
    if (
        task.external_source is not None
        and not system.same_cluster(task.owner_device_id, task.external_source)
        and decision is not Subsystem.CLOUD
    ):
        windows.extend(backhaul_outages)
    if decision is Subsystem.CLOUD:
        windows.extend(wan_outages)
    return tuple(sorted(windows))


def _attempts(
    windows: Sequence[Tuple[float, float]], start_s: float, finish_s: float
) -> int:
    """Link re-requests implied by outages overlapping the task's run.

    The task occupies ``[start_s, finish_s)`` on the epoch clock; every
    outage window intersecting that span interrupted (or deferred) one
    transfer and costs one re-request.
    """
    overlapping = sum(
        1 for w_start, w_end in windows if w_start < finish_s and w_end > start_s
    )
    return max(1, overlapping)


@staged("recovery")
def apply_recovery(
    policy: str,
    epoch: int,
    system: MECSystem,
    tasks: Sequence[Task],
    assignment: Assignment,
    threats: ThreatReport,
    options: RecoveryOptions = RecoveryOptions(),
    context: Optional[RunContext] = None,
    backhaul_outages: Sequence[Tuple[float, float]] = (),
    wan_outages: Sequence[Tuple[float, float]] = (),
    departed: FrozenSet[int] = frozenset(),
    crashed: FrozenSet[int] = frozenset(),
    start_times: Optional[Sequence[float]] = None,
) -> RecoveryOutcome:
    """Run one recovery policy over a detected threat report.

    :param policy: one of :data:`RECOVERY_POLICIES`.
    :param epoch: epoch index, stamped onto every event.
    :param system: the plan-time system.
    :param tasks: the epoch batch, in assignment row order.
    :param assignment: the planned decisions.
    :param threats: output of :func:`detect_threats` for this epoch.
    :param options: retry/backoff tunables.
    :param context: run configuration for the reassignment LP; defaults to
        the active context (whose LP solve cache the repair step reuses).
    :param backhaul_outages: epoch-relative BS–BS outage windows.
    :param wan_outages: epoch-relative BS–cloud outage windows.
    :param departed: devices gone by the end of the epoch.
    :param crashed: stations crashed by the end of the epoch.
    :param start_times: per-row epoch-relative launch times (must match
        what :func:`detect_threats` replayed with).
    """
    if policy not in RECOVERY_POLICIES:
        raise ValueError(f"recovery policy must be one of {RECOVERY_POLICIES}")
    context = context if context is not None else current_context()

    events: List[RecoveryEvent] = []
    unsatisfied: List[int] = []
    recovered: List[int] = []

    def emit(
        row: int, kind: str, action: str, ok: bool, extra: float
    ) -> None:
        events.append(
            RecoveryEvent(
                epoch=epoch,
                task_id=tasks[row].task_id,
                row=row,
                kind=kind,
                action=action,
                recovered=ok,
                extra_energy_j=extra,
            )
        )
        (recovered if ok else unsatisfied).append(row)

    # Unrecoverable categories first: the work (or its data) left with a
    # device, identically for every policy.
    for row in threats.dropped_rows:
        emit(row, "departure", "drop", False, -assignment.task_energy_j(row))
    for row in threats.data_loss_rows:
        emit(row, "data-loss", "drop", False, 0.0)

    threatened = threats.threatened_rows
    redo_j = {
        row: float(assignment.costs.energy_j[row, _CLOUD_COL])
        for row in threatened
    }
    kind_of = {row: "crash" for row in threats.crash_rows}
    kind_of.update({row: "outage" for row in threats.outage_rows})

    # Policy-specific pre-computation: a single replay (degrade) or LP
    # repair plus replay (reassign) covering every threatened row at once.
    degrade_latency: Dict[int, Optional[float]] = {}
    reassign_result: Dict[int, Tuple[Subsystem, float, Optional[float]]] = {}
    if threatened and policy == "degrade":
        decisions = list(assignment.decisions)
        for row in range(len(decisions)):
            if row in set(threats.dropped_rows) | set(threats.data_loss_rows):
                decisions[row] = Subsystem.CANCELLED
        for row in threatened:
            decisions[row] = Subsystem.CLOUD
        degraded = replay_assignment(
            system,
            tasks,
            Assignment(assignment.costs, decisions),
            backhaul_outages=tuple(backhaul_outages),
            wan_outages=tuple(wan_outages),
            start_times=start_times,
        )
        degrade_latency = {row: degraded.latencies_s[row] for row in threatened}
    elif threatened and policy == "reassign":
        survivors = surviving_system(system, departed=departed, crashed=crashed)
        if survivors is not None:
            threatened_tasks = [tasks[row] for row in threatened]
            repaired = lp_hta(
                survivors, threatened_tasks, context=context
            ).assignment
            replayed = replay_assignment(
                survivors,
                threatened_tasks,
                repaired,
                backhaul_outages=tuple(backhaul_outages),
                wan_outages=tuple(wan_outages),
                start_times=(
                    None
                    if start_times is None
                    else [start_times[row] for row in threatened]
                ),
            )
            for local, row in enumerate(threatened):
                reassign_result[row] = (
                    repaired.decisions[local],
                    repaired.task_energy_j(local),
                    replayed.latencies_s[local],
                )

    for row in threatened:
        kind = kind_of[row]
        deadline = float(assignment.costs.deadline_s[row])
        redo = redo_j[row]

        if policy == "retry" and kind == "outage":
            # Re-request the link with exponential backoff; each failed
            # attempt re-pays the path's transmission energy (Sec. II-B).
            windows = _relevant_windows(
                system, tasks[row], assignment.decisions[row],
                backhaul_outages, wan_outages,
            )
            faulty_latency = threats.faulty.latencies_s[row]
            assert faulty_latency is not None
            task_start = (
                float(start_times[row]) if start_times is not None else 0.0
            )
            attempts = _attempts(
                windows, task_start, task_start + faulty_latency
            )
            backoff = options.backoff_base_s * (2.0**attempts - 1.0)
            column = assignment.decisions[row].column
            per_attempt = task_costs(system, tasks[row]).transmission_energy_j[
                column
            ]
            extra = attempts * per_attempt
            ok = (
                attempts <= options.retry_budget
                and faulty_latency + backoff <= deadline
                and extra <= redo
            )
            emit(row, kind, "retry", ok, extra if ok else redo)
        elif policy == "degrade":
            latency = degrade_latency.get(row)
            ok = latency is not None and latency <= deadline
            emit(row, kind, "degrade", ok, redo)
        elif policy == "reassign" and row in reassign_result:
            decision, energy, latency = reassign_result[row]
            ok = (
                decision is not Subsystem.CANCELLED
                and latency is not None
                and latency <= deadline
                and energy <= redo
            )
            # The interrupted attempt is wasted either way; a successful
            # repair adds the new path's energy, a failed one the cloud
            # re-execution (== the fail-stop baseline).
            emit(row, kind, "reassign", ok, energy if ok else redo)
        else:
            # Fail-stop: wasted attempt plus a late cloud re-execution.
            emit(row, kind, "none", False, redo)

    return RecoveryOutcome(
        events=tuple(events),
        extra_energy_j=float(sum(e.extra_energy_j for e in events)),
        unsatisfied_rows=frozenset(unsatisfied),
        recovered_rows=frozenset(recovered),
    )
