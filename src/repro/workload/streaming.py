"""Streaming per-shard scenario tiles for city-scale workloads.

:func:`repro.workload.generator.generate_scenario` materialises one global
system, one global task list and (downstream) one global cost table — fine
at paper scale, hopeless at 10⁵+ devices.  This module generates the same
*kind* of workload shard by shard: each :class:`ScenarioTile` is an
independently generated mini-scenario, relabelled into the global id
namespace of a contiguous :class:`~repro.system.sharding.ShardSpec` range,
so a consumer can generate → solve → discard one tile at a time and never
hold the whole city in memory.  ``generate_scenario`` is retained untouched
as the dense reference.

**Id mapping.**  The dense generator attaches device ``d`` to station
``d % k`` (round-robin).  For a shard owning the contiguous station range
``[a, a + k_s)``, the global devices attached to it are exactly
``{d : d % k ∈ [a, a+k_s)}``, and the i-th such device (sorted) is
``(i // k_s)·k + a + (i % k_s)`` — which is also where the tile's local
round-robin attachment lands after relabelling, so tile topologies embed
exactly into the dense topology.  Per-device task counts match the dense
generator's even split, device for device.  Data-item ids are offset by a
balanced per-shard slice of the item universe, keeping tiles disjoint.

**What streaming does not preserve.**  Tiles draw from independent
per-shard RNG streams, so tile *contents* (frequencies, sizes, sources)
differ from the dense generator's at equal seeds — except for
``num_shards == 1``, where the single tile IS ``generate_scenario(profile,
seed)``, bit for bit.  External data sources are drawn shard-locally
(that independence is precisely what makes tiles streamable); the dense
generator remains the reference for cross-shard data sharing.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.data.items import DataCatalog
from repro.data.ownership import OwnershipMap
from repro.core.task import Task
from repro.system.sharding import ShardSpec
from repro.system.topology import MECSystem
from repro.workload.generator import Scenario, generate_scenario
from repro.workload.profiles import WorkloadProfile

__all__ = [
    "ScenarioTile",
    "generate_tile",
    "materialize_tiles",
    "stream_scenario_tiles",
]

#: Seed stride between shards — larger than any per-scenario seed offset
#: the dense generator uses internally (it derives seed, seed+1, seed+2).
_TILE_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class ScenarioTile:
    """One shard's slice of a streamed scenario, in global ids.

    :param shard_id: index of the shard in its spec.
    :param num_shards: total shards in the spec.
    :param profile: the *global* profile being streamed.
    :param tile_profile: the per-shard sub-profile actually generated.
    :param seed: the global stream seed.
    :param tile_seed: the derived per-shard seed.
    :param system: the shard's system, relabelled to global device/station
        ids (a standalone :class:`~repro.system.topology.MECSystem`).
    :param tasks: the shard's tasks, owners/sources in global ids.
    :param catalog: the shard's data-item slice (divisible only).
    :param ownership: the shard's holdings slice (divisible only).
    """

    shard_id: int
    num_shards: int
    profile: WorkloadProfile
    tile_profile: WorkloadProfile
    seed: int
    tile_seed: int
    system: MECSystem
    tasks: Tuple[Task, ...]
    catalog: Optional[DataCatalog] = None
    ownership: Optional[OwnershipMap] = None

    @property
    def num_devices(self) -> int:
        """Devices in this tile."""
        return self.system.num_devices

    @property
    def num_tasks(self) -> int:
        """Tasks in this tile."""
        return len(self.tasks)


def _contiguous_range(stations: Tuple[int, ...]) -> Tuple[int, int]:
    """The shard's ``(first, count)`` station range; raises if gapped."""
    first, count = stations[0], len(stations)
    if stations != tuple(range(first, first + count)):
        raise ValueError(
            "streaming tiles need contiguous shard station ranges "
            f"(got {stations}); use ShardSpec.balanced"
        )
    return first, count


def _check_spec(profile: WorkloadProfile, spec: ShardSpec) -> None:
    if spec.station_ids != tuple(range(profile.num_stations)):
        raise ValueError(
            f"spec covers stations {spec.station_ids}, profile has "
            f"0..{profile.num_stations - 1}"
        )
    if profile.divisible and profile.num_data_items < spec.num_shards:
        raise ValueError(
            "divisible streaming needs at least one data item per shard "
            f"({profile.num_data_items} items, {spec.num_shards} shards)"
        )


def _devices_below(limit: int, k: int, first: int, width: int) -> int:
    """How many global devices ``d < limit`` have ``d % k ∈ [first,
    first+width)`` — i.e. attach inside the shard's station range."""
    rounds, partial = divmod(limit, k)
    return rounds * width + max(0, min(partial, first + width) - first)


def _item_slice(num_items: int, num_shards: int, shard_id: int) -> Tuple[int, int]:
    """Balanced ``(offset, count)`` slice of the item universe."""
    base, extra = divmod(num_items, num_shards)
    count = base + (1 if shard_id < extra else 0)
    offset = shard_id * base + min(shard_id, extra)
    return offset, count


def generate_tile(
    profile: WorkloadProfile,
    spec: ShardSpec,
    shard_id: int,
    seed: int = 0,
) -> ScenarioTile:
    """Generate one shard's tile of the streamed scenario.

    Pure in (profile, spec, shard_id, seed) — tiles can be generated in any
    order, in any process, and stay bit-identical.  A one-shard spec
    returns ``generate_scenario(profile, seed)`` relabel-free, which pins
    the streaming path to the dense reference.

    :param profile: the global workload profile.
    :param spec: contiguous station partition covering the profile.
    :param shard_id: which shard to generate.
    :param seed: the global stream seed.
    """
    _check_spec(profile, spec)
    stations = spec.shards[shard_id]
    first, width = _contiguous_range(stations)
    k = profile.num_stations
    n = profile.num_devices

    if spec.num_shards == 1:
        scenario = generate_scenario(profile, seed)
        return ScenarioTile(
            shard_id=0,
            num_shards=1,
            profile=profile,
            tile_profile=profile,
            seed=seed,
            tile_seed=seed,
            system=scenario.system,
            tasks=scenario.tasks,
            catalog=scenario.catalog,
            ownership=scenario.ownership,
        )

    num_devices = _devices_below(n, k, first, width)
    base, extra = divmod(profile.num_tasks, n)
    num_tasks = base * num_devices + _devices_below(extra, k, first, width)
    item_offset, num_items = _item_slice(
        profile.num_data_items, spec.num_shards, shard_id
    )
    tile_profile = profile.with_updates(
        num_stations=width,
        num_devices=num_devices,
        # The dense generator's task RNG (seed+1) is independent of its
        # system RNG (seed), so a zero-task tile generates with a one-task
        # placeholder profile and drops the task list afterwards.
        num_tasks=max(num_tasks, 1),
        num_data_items=num_items,
    )
    tile_seed = seed + (shard_id + 1) * _TILE_SEED_STRIDE
    scenario = generate_scenario(tile_profile, tile_seed)

    # Relabel local ids into the global namespace.
    device_map = [
        (local // width) * k + first + (local % width)
        for local in range(num_devices)
    ]
    devices = [
        dataclasses.replace(
            scenario.system.device(local),
            device_id=device_map[local],
            data_items=frozenset(
                item + item_offset
                for item in scenario.system.device(local).data_items
            ),
        )
        for local in range(num_devices)
    ]
    station_list = [
        dataclasses.replace(
            scenario.system.station(local), station_id=first + local
        )
        for local in range(width)
    ]
    attachment = {
        device_map[local]: first + scenario.system.cluster_of(local)
        for local in range(num_devices)
    }
    system = MECSystem(
        devices=devices,
        stations=station_list,
        attachment=attachment,
        cloud=scenario.system.cloud,
        bs_bs_link=scenario.system.bs_bs_link,
        bs_cloud_link=scenario.system.bs_cloud_link,
        parameters=scenario.system.parameters,
    )
    tasks = tuple(
        dataclasses.replace(
            task,
            owner_device_id=device_map[task.owner_device_id],
            external_source=(
                None
                if task.external_source is None
                else device_map[task.external_source]
            ),
            required_items=frozenset(
                item + item_offset for item in task.required_items
            ),
        )
        for task in scenario.tasks[: num_tasks]
    )
    catalog = None
    ownership = None
    if scenario.catalog is not None:
        catalog = DataCatalog.from_sizes(
            {
                item + item_offset: scenario.catalog.size_of(item)
                for item in scenario.catalog.item_ids
            }
        )
    if scenario.ownership is not None:
        ownership = OwnershipMap(
            {
                device_map[local]: {
                    item + item_offset
                    for item in scenario.ownership.items_of(local)
                }
                for local in range(num_devices)
            }
        )
    return ScenarioTile(
        shard_id=shard_id,
        num_shards=spec.num_shards,
        profile=profile,
        tile_profile=tile_profile,
        seed=seed,
        tile_seed=tile_seed,
        system=system,
        tasks=tasks,
        catalog=catalog,
        ownership=ownership,
    )


def stream_scenario_tiles(
    profile: WorkloadProfile,
    spec: Optional[ShardSpec] = None,
    num_shards: int = 1,
    seed: int = 0,
) -> Iterator[ScenarioTile]:
    """Yield the scenario one shard tile at a time.

    :param profile: the global workload profile.
    :param spec: station partition; defaults to
        ``ShardSpec.balanced(range(num_stations), num_shards)``.
    :param num_shards: shard count used when ``spec`` is omitted.
    :param seed: the global stream seed.
    """
    if spec is None:
        spec = ShardSpec.balanced(range(profile.num_stations), num_shards)
    for shard_id in range(spec.num_shards):
        yield generate_tile(profile, spec, shard_id, seed)


def materialize_tiles(
    profile: WorkloadProfile,
    spec: Optional[ShardSpec] = None,
    num_shards: int = 1,
    seed: int = 0,
) -> Scenario:
    """Assemble the streamed tiles into one dense :class:`Scenario`.

    The inverse check for streaming: the combined system has every tile as
    a station-range shard, tasks ordered canonically by (owner, index).
    Intended for differential tests and paper-scale instances — at city
    scale, stream the tiles instead.
    """
    tiles = list(stream_scenario_tiles(profile, spec, num_shards, seed))
    if len(tiles) == 1:
        tile = tiles[0]
        return Scenario(
            profile=profile,
            seed=seed,
            system=tile.system,
            tasks=tile.tasks,
            catalog=tile.catalog,
            ownership=tile.ownership,
        )
    devices = sorted(
        (device for tile in tiles for device in tile.system.devices.values()),
        key=lambda device: device.device_id,
    )
    station_list = sorted(
        (station for tile in tiles for station in tile.system.stations.values()),
        key=lambda station: station.station_id,
    )
    attachment = {
        device.device_id: tile.system.cluster_of(device.device_id)
        for tile in tiles
        for device in tile.system.devices.values()
    }
    reference = tiles[0].system
    system = MECSystem(
        devices=devices,
        stations=station_list,
        attachment=attachment,
        cloud=reference.cloud,
        bs_bs_link=reference.bs_bs_link,
        bs_cloud_link=reference.bs_cloud_link,
        parameters=reference.parameters,
    )
    tasks = tuple(
        sorted(
            (task for tile in tiles for task in tile.tasks),
            key=lambda task: (task.owner_device_id, task.index),
        )
    )
    catalog = None
    ownership = None
    if all(tile.catalog is not None for tile in tiles):
        sizes = {}
        for tile in tiles:
            for item in tile.catalog.item_ids:
                sizes[item] = tile.catalog.size_of(item)
        catalog = DataCatalog.from_sizes(sizes)
    if all(tile.ownership is not None for tile in tiles):
        holdings: dict = {}
        for tile in tiles:
            for device in tile.system.devices:
                holdings[device] = set(tile.ownership.items_of(device))
        ownership = OwnershipMap(holdings)
    return Scenario(
        profile=profile,
        seed=seed,
        system=system,
        tasks=tasks,
        catalog=catalog,
        ownership=ownership,
    )
