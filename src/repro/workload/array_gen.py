"""Array-native scenario generation (the compiled hot path of ``generator``).

The object generator draws every random quantity through a scalar
``Generator`` method call — five per task, four per device — and runs each
value through dataclass construction.  At sweep and streaming-tile scale
the per-call overhead dominates.  This module prefetches the PCG64 *raw
word stream* in one ``random_raw`` call, decodes it with the exact
arithmetic numpy's scalar paths use, and defers dataclass materialisation
to a thin view loop over plain Python floats.

The decode model (verified empirically, and pinned by the differential
tests):

- ``rng.uniform(a, b)`` consumes one raw 64-bit word and computes
  ``a + (b - a) * u`` with ``u = (word >> 11) * 2**-53``.  Array fills are
  row-major identical to sequential scalar draws.
- ``rng.integers(0, n)`` for ``0 < n < 2**32`` uses numpy's *buffered*
  32-bit Lemire sampler: with an empty buffer it consumes one word, uses
  the low half and buffers the high half inside the bit generator; with a
  full buffer it consumes **no** word.  The candidate is
  ``(word32 * n) >> 32``, rejected when ``(word32 * n) & 0xFFFFFFFF``
  falls below ``(2**32 - n) % n``.  ``integers(0, 1)`` consumes nothing.
- ``uniform`` draws neither use nor disturb the 32-bit buffer.

Rejections are ~``n / 2**32`` rare; rather than replicate the resample
loop this module *bails out* (returns None) whenever
``(word32 * n) & 0xFFFFFFFF < n`` — a superset of the true rejection test
— and the caller falls back to the object path, which is bit-identical by
the repo's standing differential guarantee.  The same bail covers systems
whose device ids are not ``0..n-1`` in iteration order (relabelled
streaming tiles).

Divisible-task profiles always take the object path: their draws go
through ``rng.choice(..., replace=False)`` whose consumption pattern is
not worth compiling.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.task import Task
from repro.system.devices import BaseStation, Cloud, MobileDevice
from repro.system.radio import FOUR_G, WIFI
from repro.system.topology import MECSystem, SystemParameters
from repro.workload.profiles import WorkloadProfile

__all__ = ["generate_holistic_tasks", "generate_system_arrays"]

_U53 = 2.0**-53


def _decode_uniform_words(raw: np.ndarray) -> List[float]:
    """The double in [0, 1) each raw word yields, as plain Python floats."""
    return ((raw >> np.uint64(11)) * _U53).tolist()


def generate_system_arrays(
    profile: WorkloadProfile,
    seed: int,
    ownership,
    area_side_m: float,
    station_positions: Sequence[Tuple[float, float]],
    result_size,
    cycles,
) -> MECSystem:
    """Array-path twin of :func:`repro.workload.generator.generate_system`.

    One ``random_raw(4n)`` prefetch replaces the four scalar draws per
    device; the view loop keeps the scalar ``math.cos``/``math.sin`` calls
    (libm trig is what the object path used — numpy's SIMD trig may round
    differently) and replicates the ``MobileDevice`` validation inline.
    """
    rng = np.random.default_rng(seed)
    n = profile.num_devices
    raw = rng.bit_generator.random_raw(4 * n) if n else np.empty(0, dtype=np.uint64)
    u = _decode_uniform_words(raw)

    stations = [
        BaseStation(
            station_id=sid,
            max_resource=profile.station_max_resource,
            position=station_positions[sid],
        )
        for sid in range(profile.num_stations)
    ]

    two_pi = 2.0 * math.pi
    cell_radius = area_side_m / (2.0 * math.ceil(math.sqrt(profile.num_stations)))
    freq_lo, freq_hi = profile.device_frequency_range_hz
    wifi_p = profile.wifi_probability
    max_resource = profile.device_max_resource
    if max_resource < 0:
        raise ValueError("max_resource must be non-negative")

    devices = []
    attachment = {}
    new = object.__new__
    set_field = object.__setattr__
    empty_items = frozenset()
    for device_id in range(n):
        station_id = device_id % profile.num_stations
        sx, sy = station_positions[station_id]
        base = 4 * device_id
        angle = 0.0 + (two_pi - 0.0) * u[base]
        radius = cell_radius * math.sqrt(0.0 + (1.0 - 0.0) * u[base + 1])
        wireless = WIFI if 0.0 + (1.0 - 0.0) * u[base + 2] < wifi_p else FOUR_G
        freq = float(freq_lo + (freq_hi - freq_lo) * u[base + 3])
        if freq <= 0:
            raise ValueError("cpu_frequency_hz must be positive")
        items = ownership.items_of(device_id) if ownership is not None else empty_items
        device = new(MobileDevice)
        set_field(device, "device_id", device_id)
        set_field(device, "cpu_frequency_hz", freq)
        set_field(device, "wireless", wireless)
        set_field(device, "max_resource", max_resource)
        set_field(device, "data_items", items)
        set_field(
            device,
            "position",
            (sx + radius * math.cos(angle), sy + radius * math.sin(angle)),
        )
        devices.append(device)
        attachment[device_id] = station_id

    parameters = SystemParameters(cycles=cycles, result_size=result_size)
    return MECSystem(
        devices=devices,
        stations=stations,
        attachment=attachment,
        cloud=Cloud(),
        parameters=parameters,
    )


_EMPTY_ITEMS = frozenset()


def generate_holistic_tasks(
    system: MECSystem,
    profile: WorkloadProfile,
    seed: int,
    counts: Sequence[int],
) -> Optional[List[Task]]:
    """Array-path twin of the holistic loop in ``generate_tasks``.

    Decodes the prefetched word stream task by task — two uniforms, an
    optional cross-cluster uniform, an optional buffered-Lemire source
    index, a deadline uniform — tracking the bit generator's 32-bit buffer
    parity through the loop.  Registers the resulting task arrays with
    :mod:`repro.core.costs` so the cost-table build skips its per-task
    gather loop.

    :returns: the task list, or None when the stream cannot be decoded
        statically (possible Lemire rejection, non-canonical device ids) —
        the caller falls back to the object path.
    """
    num_devices = profile.num_devices
    device_ids = list(system.devices)
    if len(device_ids) != num_devices or device_ids != list(range(num_devices)):
        return None

    total_tasks = sum(counts)
    rng = np.random.default_rng(seed + 1)
    raw = (
        rng.bit_generator.random_raw(5 * total_tasks)
        if total_tasks
        else np.empty(0, dtype=np.uint64)
    )
    u = _decode_uniform_words(raw)
    lo32 = (raw & np.uint64(0xFFFFFFFF)).tolist()
    hi32 = (raw >> np.uint64(32)).tolist()

    clusters = [system.cluster_of(d) for d in device_ids]
    members: Dict[int, List[int]] = {}
    for d in device_ids:
        members.setdefault(clusters[d], []).append(d)
    rank: Dict[int, int] = {}
    for cluster_members in members.values():
        for position, d in enumerate(cluster_members):
            rank[d] = position
    cross_lists: Dict[int, List[int]] = {}

    min_frac = profile.min_input_fraction
    max_bytes = profile.max_input_bytes
    ratio_lo, ratio_hi = profile.external_ratio_range
    p_cross = profile.external_cross_cluster_prob
    dead_lo, dead_hi = profile.deadline_range_s
    demand_per_byte = profile.resource_demand_per_byte

    owners: List[int] = []
    indices: List[int] = []
    alphas: List[float] = []
    betas: List[float] = []
    sources: List[Optional[int]] = []
    demands: List[float] = []
    deadlines: List[float] = []

    offset = 0
    buffered: Optional[int] = None
    for owner_id, count in enumerate(counts):
        owner_cluster = clusters[owner_id]
        cluster_members = members[owner_cluster]
        n_same = len(cluster_members) - 1
        n_cross = num_devices - len(cluster_members)
        owner_rank = rank[owner_id]
        for index in range(count):
            total = float(
                (min_frac + (1.0 - min_frac) * u[offset]) * max_bytes
            )
            ratio = ratio_lo + (ratio_hi - ratio_lo) * u[offset + 1]
            beta = total * ratio / (1.0 + ratio)
            alpha = total - beta
            offset += 2
            source: Optional[int] = None
            if beta > 0:
                cross = 0.0 + (1.0 - 0.0) * u[offset] < p_cross
                offset += 1
                fallback = False
                n = n_cross if cross else n_same
                if n == 0:
                    n = num_devices - 1
                    fallback = True
                if n == 0:
                    source = None
                elif n == 1:
                    # integers(0, 1) consumes no words at all.
                    if fallback:
                        source = 0 if owner_id != 0 else 1
                    elif cross:
                        chosen = cross_lists.get(owner_cluster)
                        if chosen is None:
                            chosen = [
                                d for d in device_ids if clusters[d] != owner_cluster
                            ]
                            cross_lists[owner_cluster] = chosen
                        source = chosen[0]
                    else:
                        source = cluster_members[0 if owner_rank != 0 else 1]
                else:
                    if buffered is None:
                        word32 = lo32[offset]
                        buffered = hi32[offset]
                        offset += 1
                    else:
                        word32 = buffered
                        buffered = None
                    product = word32 * n
                    if product & 0xFFFFFFFF < n:
                        # Conservative Lemire-rejection test: the sampler
                        # *might* redraw here, so the static decode is off.
                        return None
                    idx = product >> 32
                    if fallback:
                        source = idx if idx < owner_id else idx + 1
                    elif cross:
                        chosen = cross_lists.get(owner_cluster)
                        if chosen is None:
                            chosen = [
                                d for d in device_ids if clusters[d] != owner_cluster
                            ]
                            cross_lists[owner_cluster] = chosen
                        source = chosen[idx]
                    else:
                        source = cluster_members[
                            idx if idx < owner_rank else idx + 1
                        ]
                if source is None:
                    alpha, beta = total, 0.0
            deadline = float(dead_lo + (dead_hi - dead_lo) * u[offset])
            offset += 1
            owners.append(owner_id)
            indices.append(index)
            alphas.append(alpha)
            betas.append(beta)
            sources.append(source)
            demands.append(total * demand_per_byte)
            deadlines.append(deadline)

    tasks: List[Task] = []
    new = object.__new__
    set_field = object.__setattr__
    for i in range(total_tasks):
        task = new(Task)
        set_field(task, "owner_device_id", owners[i])
        set_field(task, "index", indices[i])
        set_field(task, "local_bytes", alphas[i])
        set_field(task, "external_bytes", betas[i])
        set_field(task, "external_source", sources[i])
        set_field(task, "resource_demand", demands[i])
        set_field(task, "deadline_s", deadlines[i])
        set_field(task, "divisible", False)
        set_field(task, "required_items", _EMPTY_ITEMS)
        set_field(task, "operation", "generic")
        tasks.append(task)

    from repro.core import costs

    costs.register_task_arrays(
        system,
        tasks,
        {
            "owner": np.asarray(owners, dtype=np.int64),
            "alpha": np.asarray(alphas, dtype=np.float64),
            "beta": np.asarray(betas, dtype=np.float64),
            "source": np.asarray(
                [-1 if s is None else s for s in sources], dtype=np.int64
            ),
            "has_ext": np.asarray([b > 0 for b in betas], dtype=bool),
            "resource": np.asarray(demands, dtype=np.float64),
            "deadline": np.asarray(deadlines, dtype=np.float64),
        },
    )
    return tasks
