"""Workload and scenario generation for the paper's experiments."""

from repro.workload.profiles import PAPER_DEFAULTS, WorkloadProfile
from repro.workload.generator import (
    Scenario,
    generate_scenario,
    generate_system,
    generate_tasks,
)
from repro.workload.streaming import (
    ScenarioTile,
    generate_tile,
    materialize_tiles,
    stream_scenario_tiles,
)

__all__ = [
    "PAPER_DEFAULTS",
    "Scenario",
    "ScenarioTile",
    "WorkloadProfile",
    "generate_scenario",
    "generate_system",
    "generate_tasks",
    "generate_tile",
    "materialize_tiles",
    "stream_scenario_tiles",
]
