"""Workload and scenario generation for the paper's experiments."""

from repro.workload.profiles import PAPER_DEFAULTS, WorkloadProfile
from repro.workload.generator import (
    Scenario,
    generate_scenario,
    generate_system,
    generate_tasks,
)

__all__ = [
    "PAPER_DEFAULTS",
    "Scenario",
    "WorkloadProfile",
    "generate_scenario",
    "generate_system",
    "generate_tasks",
]
