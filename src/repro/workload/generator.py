"""Scenario generation: systems, tasks and shared-data universes.

The generator reproduces the experimental setup of Section V-A: devices with
uniform CPU frequencies in [1, 2] GHz on 4G or Wi-Fi at random, 4 GHz base
stations, a 2.4 GHz cloud, input sizes up to the profile's maximum, external
data 0–0.5× the local data, and (for divisible workloads) a shared-data
universe with overlapping per-device holdings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro import perf
from repro.context import current_context
from repro.core.task import Task
from repro.obs.tracer import staged
from repro.data.items import DataCatalog
from repro.data.ownership import OwnershipMap
from repro.data.universe import random_overlap_universe
from repro.system.computation import CyclesModel, ResultSizeModel
from repro.system.devices import BaseStation, Cloud, MobileDevice
from repro.system.radio import FOUR_G, WIFI
from repro.system.topology import MECSystem, SystemParameters
from repro.workload.profiles import WorkloadProfile

__all__ = ["Scenario", "generate_scenario", "generate_system", "generate_tasks"]

#: Average number of data items one divisible task touches.
_ITEMS_PER_TASK = 8


@dataclass(frozen=True)
class Scenario:
    """A fully generated experiment scenario.

    :param profile: the generating profile.
    :param seed: the RNG seed used.
    :param system: the MEC system.
    :param tasks: the generated tasks.
    :param catalog: the data-item catalog (divisible workloads only).
    :param ownership: per-device holdings (divisible workloads only).
    """

    profile: WorkloadProfile
    seed: int
    system: MECSystem
    tasks: Tuple[Task, ...]
    catalog: Optional[DataCatalog] = None
    ownership: Optional[OwnershipMap] = None

    @property
    def universe(self) -> frozenset:
        """All item ids the tasks collectively require (D of Section IV)."""
        out = set()
        for task in self.tasks:
            out |= task.required_items
        return frozenset(out)


def _station_positions(k: int, area_side_m: float) -> List[Tuple[float, float]]:
    """Base stations on a near-square grid over the area."""
    cols = int(math.ceil(math.sqrt(k)))
    rows = int(math.ceil(k / cols))
    positions = []
    for index in range(k):
        row, col = divmod(index, cols)
        positions.append(
            (
                (col + 0.5) * area_side_m / cols,
                (row + 0.5) * area_side_m / rows,
            )
        )
    return positions


def generate_system(
    profile: WorkloadProfile,
    seed: int = 0,
    ownership: Optional[OwnershipMap] = None,
    area_side_m: float = 2000.0,
) -> MECSystem:
    """Generate the MEC system of a profile.

    Devices are attached round-robin to stations and placed near them;
    frequencies, radio profiles and caps follow the profile.

    :param profile: scenario parameters.
    :param seed: RNG seed.
    :param ownership: optional pre-generated data holdings to bake into the
        devices' ``data_items``.
    :param area_side_m: side of the simulated square area.
    """
    station_positions = _station_positions(profile.num_stations, area_side_m)
    result_size = (
        ResultSizeModel.constant(profile.result_constant_bytes)
        if profile.result_constant_bytes is not None
        else ResultSizeModel.proportional(profile.result_ratio)
    )

    context = current_context()
    if context.vectorized_generator and not context.reference:
        from repro.workload.array_gen import generate_system_arrays

        return generate_system_arrays(
            profile,
            seed,
            ownership,
            area_side_m,
            station_positions,
            result_size,
            CyclesModel(),
        )

    rng = np.random.default_rng(seed)
    stations = [
        BaseStation(
            station_id=sid,
            max_resource=profile.station_max_resource,
            position=station_positions[sid],
        )
        for sid in range(profile.num_stations)
    ]

    devices = []
    attachment = {}
    cell_radius = area_side_m / (2.0 * math.ceil(math.sqrt(profile.num_stations)))
    freq_lo, freq_hi = profile.device_frequency_range_hz
    for device_id in range(profile.num_devices):
        station_id = device_id % profile.num_stations
        sx, sy = station_positions[station_id]
        angle = rng.uniform(0.0, 2.0 * math.pi)
        radius = cell_radius * math.sqrt(rng.uniform(0.0, 1.0))
        wireless = WIFI if rng.uniform() < profile.wifi_probability else FOUR_G
        items = ownership.items_of(device_id) if ownership is not None else frozenset()
        devices.append(
            MobileDevice(
                device_id=device_id,
                cpu_frequency_hz=float(rng.uniform(freq_lo, freq_hi)),
                wireless=wireless,
                max_resource=profile.device_max_resource,
                data_items=items,
                position=(sx + radius * math.cos(angle), sy + radius * math.sin(angle)),
            )
        )
        attachment[device_id] = station_id

    parameters = SystemParameters(cycles=CyclesModel(), result_size=result_size)
    return MECSystem(
        devices=devices,
        stations=stations,
        attachment=attachment,
        cloud=Cloud(),
        parameters=parameters,
    )


def _tasks_per_device(num_tasks: int, num_devices: int) -> List[int]:
    """Spread tasks as evenly as possible (the paper's equal-m assumption)."""
    base, extra = divmod(num_tasks, num_devices)
    return [base + (1 if device < extra else 0) for device in range(num_devices)]


class _SourceCandidates:
    """Per-scenario candidate lists for :func:`_pick_external_source`.

    The candidate sets depend only on the (static) topology, not on the
    task being generated, so they are built once per scenario instead of
    re-filtered per task.  Device iteration order is preserved exactly, so
    ``rng.choice`` sees the same lists — and draws the same sources — as
    the per-task filtering did.
    """

    def __init__(self, system: MECSystem) -> None:
        self._system = system
        self._cross: dict = {}
        self._same: dict = {}
        self._members: dict = {}
        self._fallback: dict = {}

    def _cluster_members(self, cluster: int) -> list:
        members = self._members.get(cluster)
        if members is None:
            members = [
                d
                for d in self._system.devices
                if self._system.cluster_of(d) == cluster
            ]
            self._members[cluster] = members
        return members

    def cross_cluster(self, owner_cluster: int) -> list:
        candidates = self._cross.get(owner_cluster)
        if candidates is None:
            candidates = [
                d
                for d in self._system.devices
                if self._system.cluster_of(d) != owner_cluster
            ]
            self._cross[owner_cluster] = candidates
        return candidates

    def same_cluster(self, owner_id: int, owner_cluster: int) -> list:
        candidates = self._same.get(owner_id)
        if candidates is None:
            # Filtering the memoised cluster membership by owner keeps the
            # device order of the one-pass filter it replaces.
            candidates = [
                d for d in self._cluster_members(owner_cluster) if d != owner_id
            ]
            self._same[owner_id] = candidates
        return candidates

    def any_other(self, owner_id: int) -> list:
        candidates = self._fallback.get(owner_id)
        if candidates is None:
            candidates = [d for d in self._system.devices if d != owner_id]
            self._fallback[owner_id] = candidates
        return candidates


def _pick_external_source(
    system: MECSystem,
    owner_id: int,
    cross_cluster: bool,
    rng: np.random.Generator,
    pool: Optional[_SourceCandidates] = None,
) -> Optional[int]:
    """A device (≠ owner) to hold the task's external data, or None.

    With a candidate ``pool`` the per-task filtering is skipped and the
    uniform draw goes through ``rng.integers`` over the cached list —
    ``lst[rng.integers(0, len(lst))]`` consumes the bit stream exactly like
    ``rng.choice(lst)``, so both paths pick the same source.  The
    ``pool=None`` path is the reference implementation the equivalence
    tests compare against.
    """
    owner_cluster = system.cluster_of(owner_id)
    if pool is not None:
        if cross_cluster:
            candidates = pool.cross_cluster(owner_cluster)
        else:
            candidates = pool.same_cluster(owner_id, owner_cluster)
        if not candidates:
            candidates = pool.any_other(owner_id)
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]

    if cross_cluster:
        candidates = [
            d for d in system.devices if system.cluster_of(d) != owner_cluster
        ]
    else:
        candidates = [
            d
            for d in system.devices
            if d != owner_id and system.cluster_of(d) == owner_cluster
        ]
    if not candidates:
        candidates = [d for d in system.devices if d != owner_id]
    if not candidates:
        return None
    return int(rng.choice(candidates))


_EMPTY_ITEMS = frozenset()


def _fast_holistic_task(
    owner_id: int,
    index: int,
    alpha: float,
    beta: float,
    source: Optional[int],
    demand: float,
    deadline_s: float,
) -> Task:
    """Build a holistic :class:`Task` without re-running ``__post_init__``.

    The generator's draws satisfy every Task invariant by construction
    (non-negative sizes, positive deadline, source set iff beta > 0), so the
    hot path skips the dataclass ``__init__``.  Field values are exactly the
    ones the constructor would store — equality and hashing are unchanged.
    """
    task = object.__new__(Task)
    set_field = object.__setattr__
    set_field(task, "owner_device_id", owner_id)
    set_field(task, "index", index)
    set_field(task, "local_bytes", alpha)
    set_field(task, "external_bytes", beta)
    set_field(task, "external_source", source)
    set_field(task, "resource_demand", demand)
    set_field(task, "deadline_s", deadline_s)
    set_field(task, "divisible", False)
    set_field(task, "required_items", _EMPTY_ITEMS)
    set_field(task, "operation", "generic")
    return task


def _holistic_task(
    system: MECSystem,
    profile: WorkloadProfile,
    owner_id: int,
    index: int,
    rng: np.random.Generator,
    pool: Optional[_SourceCandidates] = None,
) -> Task:
    """One holistic task with paper-distribution sizes."""
    total = float(
        rng.uniform(profile.min_input_fraction, 1.0) * profile.max_input_bytes
    )
    ratio = float(rng.uniform(*profile.external_ratio_range))
    beta = total * ratio / (1.0 + ratio)
    alpha = total - beta
    source = None
    if beta > 0:
        cross = rng.uniform() < profile.external_cross_cluster_prob
        source = _pick_external_source(system, owner_id, cross, rng, pool)
        if source is None:
            alpha, beta = total, 0.0
    if pool is not None:
        return _fast_holistic_task(
            owner_id,
            index,
            alpha,
            beta,
            source,
            total * profile.resource_demand_per_byte,
            float(rng.uniform(*profile.deadline_range_s)),
        )
    return Task(
        owner_device_id=owner_id,
        index=index,
        local_bytes=alpha,
        external_bytes=beta,
        external_source=source,
        resource_demand=total * profile.resource_demand_per_byte,
        deadline_s=float(rng.uniform(*profile.deadline_range_s)),
        divisible=False,
    )


class _DivisibleUniverse:
    """Per-scenario catalog/ownership memo for :func:`_divisible_task`.

    The catalog and ownership map are immutable for the life of a
    scenario, so the sorted item list and the per-item owner sets are
    built once instead of per task.  ``all_items`` is the same sorted
    sequence the per-task code sorts, so ``rng.choice`` draws the same
    subsets; each holder's byte total accumulates in missing-item (outer
    loop) order either way, so swapping ``owners_of`` for this index
    cannot change any float.
    """

    def __init__(self, catalog: DataCatalog, ownership: OwnershipMap) -> None:
        items = sorted(catalog.item_ids)
        self.all_items = np.asarray(items)
        self.sizes = {item: catalog.size_of(item) for item in items}
        self.owners = {item: tuple(ownership.owners_of(item)) for item in items}


def _divisible_task(
    system: MECSystem,
    profile: WorkloadProfile,
    catalog: DataCatalog,
    ownership: OwnershipMap,
    owner_id: int,
    index: int,
    rng: np.random.Generator,
    universe: Optional[_DivisibleUniverse] = None,
) -> Task:
    """One divisible task over a random subset of the data universe."""
    if universe is not None:
        all_items = universe.all_items
    else:
        all_items = sorted(catalog.item_ids)
    count = int(rng.integers(_ITEMS_PER_TASK // 2, _ITEMS_PER_TASK * 3 // 2 + 1))
    count = min(count, len(all_items))
    required = frozenset(
        int(i) for i in rng.choice(all_items, size=count, replace=False)
    )
    owned = ownership.items_of(owner_id) & required
    missing = required - owned
    alpha = catalog.total_bytes(owned)
    beta = catalog.total_bytes(missing)
    source = None
    if beta > 0:
        # L_ij: the device holding the largest share of the missing data.
        holders = {}
        for item in missing:
            if universe is not None:
                owners = universe.owners[item]
                size = universe.sizes[item]
            else:
                owners = ownership.owners_of(item)
                size = catalog.size_of(item)
            for holder in owners:
                if holder != owner_id:
                    holders[holder] = holders.get(holder, 0.0) + size
        if holders:
            source = max(sorted(holders), key=lambda d: holders[d])
        else:
            alpha, beta = alpha + beta, 0.0  # nobody else holds it: treat as local
    return Task(
        owner_device_id=owner_id,
        index=index,
        local_bytes=alpha,
        external_bytes=beta,
        external_source=source,
        resource_demand=(alpha + beta) * profile.resource_demand_per_byte,
        deadline_s=float(rng.uniform(*profile.deadline_range_s)),
        divisible=True,
        required_items=required,
    )


def generate_tasks(
    system: MECSystem,
    profile: WorkloadProfile,
    seed: int = 0,
    catalog: Optional[DataCatalog] = None,
    ownership: Optional[OwnershipMap] = None,
) -> List[Task]:
    """Generate the profile's tasks over an existing system.

    :param system: the MEC system.
    :param profile: scenario parameters.
    :param seed: RNG seed.
    :param catalog: required when ``profile.divisible``.
    :param ownership: required when ``profile.divisible``.
    """
    if profile.divisible and (catalog is None or ownership is None):
        raise ValueError("divisible workloads need a catalog and ownership map")
    counts = _tasks_per_device(profile.num_tasks, profile.num_devices)

    context = current_context()
    if context.vectorized_generator and not context.reference and not profile.divisible:
        from repro.workload.array_gen import generate_holistic_tasks

        tasks = generate_holistic_tasks(system, profile, seed, counts)
        if tasks is not None:
            return tasks
        # Undecodable word stream (rare Lemire rejection or relabelled
        # device ids): fall back to the object path below.
        context.telemetry.metrics.incr("generate.array_bailout")

    rng = np.random.default_rng(seed + 1)
    tasks: List[Task] = []
    sources = None if perf.reference_mode() else _SourceCandidates(system)
    universe = None
    if profile.divisible and not perf.reference_mode():
        universe = _DivisibleUniverse(catalog, ownership)
    for owner_id, count in enumerate(counts):
        for index in range(count):
            if profile.divisible:
                task = _divisible_task(
                    system, profile, catalog, ownership, owner_id, index, rng,
                    universe,
                )
            else:
                task = _holistic_task(system, profile, owner_id, index, rng, sources)
            tasks.append(task)
    return tasks


@staged("generate")
def generate_scenario(profile: WorkloadProfile, seed: int = 0) -> Scenario:
    """Generate a complete scenario (system, tasks, data) from a profile.

    :param profile: scenario parameters.
    :param seed: RNG seed; equal (profile, seed) pairs generate identical
        scenarios.
    """
    catalog = None
    ownership = None
    if profile.divisible:
        mean_item = profile.max_input_bytes / _ITEMS_PER_TASK
        catalog, ownership = random_overlap_universe(
            num_items=profile.num_data_items,
            device_ids=list(range(profile.num_devices)),
            mean_size_bytes=mean_item,
            replication=profile.item_replication,
            seed=seed + 2,
        )
    system = generate_system(profile, seed=seed, ownership=ownership)
    tasks = generate_tasks(
        system, profile, seed=seed, catalog=catalog, ownership=ownership
    )
    return Scenario(
        profile=profile,
        seed=seed,
        system=system,
        tasks=tuple(tasks),
        catalog=catalog,
        ownership=ownership,
    )
