"""Workload profiles: every knob of the simulated experiments in one place.

Values the paper pins down (Section V-A) are defaulted to the paper's
numbers; values the paper leaves open (deadlines, resource demands, caps,
cluster count) are documented here and swept by the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.units import KB, MB, gigahertz

__all__ = ["PAPER_DEFAULTS", "WorkloadProfile"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Parameters of one simulated MEC scenario.

    :param num_stations: k, the number of base stations.
    :param num_devices: n, the number of mobile devices (= users).
    :param num_tasks: total tasks in the system (spread evenly over users,
        as the paper assumes).
    :param max_input_bytes: maximum input data size per task (the paper's
        x-axis "maximum size of input data"); actual sizes are uniform in
        [``min_input_fraction``·max, max].
    :param min_input_fraction: lower edge of the input-size distribution,
        as a fraction of the maximum.
    :param external_ratio_range: β/α is uniform in this range — the paper
        sets "0 to 0.5 times the local data".
    :param external_cross_cluster_prob: probability that the external-data
        holder lives in a different cluster than the task owner.
    :param deadline_range_s: task deadlines :math:`T_{ij}` are uniform in
        this range (not specified by the paper; calibrated so that C1 binds
        for offloading-heavy schemes but LP-HTA can almost always place the
        task somewhere feasible).
    :param resource_units_per_mb: resource demand :math:`C_{ij}` per MB of
        input (memory-like units).
    :param device_max_resource: :math:`max_i`, identical across devices.
    :param station_max_resource: :math:`max_S`, identical across stations.
    :param device_frequency_range_hz: device CPU frequencies are uniform in
        this range (the paper: 1 GHz to 2 GHz).
    :param result_ratio: η, result size per input byte (0.2 by default).
    :param result_constant_bytes: if set, results have this fixed size
        instead of the proportional model (the Fig. 5b "constant" series).
    :param wifi_probability: probability a device is on Wi-Fi (else 4G) —
        "each mobile device connects with the base station by 4G or WiFi
        randomly".
    :param num_data_items: number of shared data items in the universe
        (divisible-task experiments).
    :param item_replication: average number of devices owning each item.
    :param divisible: whether generated tasks are marked divisible.
    """

    num_stations: int = 4
    num_devices: int = 40
    num_tasks: int = 200
    max_input_bytes: float = 3000 * KB
    min_input_fraction: float = 0.1
    external_ratio_range: Tuple[float, float] = (0.0, 0.5)
    external_cross_cluster_prob: float = 0.3
    deadline_range_s: Tuple[float, float] = (0.5, 6.0)
    resource_units_per_mb: float = 1.0
    device_max_resource: float = 6.0
    station_max_resource: float = 60.0
    device_frequency_range_hz: Tuple[float, float] = (gigahertz(1.0), gigahertz(2.0))
    result_ratio: float = 0.2
    result_constant_bytes: Optional[float] = None
    wifi_probability: float = 0.5
    num_data_items: int = 400
    item_replication: float = 3.0
    divisible: bool = False

    def __post_init__(self) -> None:
        if self.num_stations <= 0 or self.num_devices <= 0 or self.num_tasks <= 0:
            raise ValueError("counts must be positive")
        if self.num_devices < self.num_stations:
            raise ValueError("need at least one device per station")
        if self.max_input_bytes <= 0:
            raise ValueError("max_input_bytes must be positive")
        if not 0 <= self.min_input_fraction <= 1:
            raise ValueError("min_input_fraction must be in [0, 1]")
        lo, hi = self.external_ratio_range
        if not 0 <= lo <= hi:
            raise ValueError("external_ratio_range must be ordered and non-negative")
        if not 0 <= self.external_cross_cluster_prob <= 1:
            raise ValueError("external_cross_cluster_prob must be a probability")
        lo, hi = self.deadline_range_s
        if not 0 < lo <= hi:
            raise ValueError("deadline_range_s must be positive and ordered")
        lo, hi = self.device_frequency_range_hz
        if not 0 < lo <= hi:
            raise ValueError("device_frequency_range_hz must be positive and ordered")
        if not 0 <= self.wifi_probability <= 1:
            raise ValueError("wifi_probability must be a probability")
        if self.item_replication < 1:
            raise ValueError("item_replication must be at least 1")

    def with_updates(self, **changes) -> "WorkloadProfile":
        """A copy of this profile with the given fields replaced."""
        return replace(self, **changes)

    @property
    def resource_demand_per_byte(self) -> float:
        """C_ij units per input byte."""
        return self.resource_units_per_mb / MB


#: The Section V-A configuration used by the figure reproductions.
PAPER_DEFAULTS = WorkloadProfile()
