"""Command-line interface: regenerate any figure or table of the paper.

Usage::

    mecrepro table1
    mecrepro figure fig2a --seeds 0 1 2
    mecrepro all-figures --seeds 0
    mecrepro demo --tasks 200 --seed 1
    mecrepro report --figure fig2a

Algorithm and policy choices come from :mod:`repro.registry`, so the CLI
always lists exactly what is registered.  ``--stats`` prints the run's LP
telemetry (solves, wall time, LP-cache and scenario-memo hit rates,
warm-start reuse) collected on the active
:class:`~repro.context.RunContext`.  ``--trace PATH`` / ``--log-json
PATH`` enable span tracing and export it (Chrome ``trace_event`` JSON /
JSONL); ``report`` runs one figure and prints the per-stage latency
breakdown (see :mod:`repro.obs`).

Sweeps are crash-safe: ``--journal PATH`` checkpoints every completed
cell and ``--resume`` replays them byte-identically after a crash or
kill; ``--cell-timeout`` / ``--max-attempts`` bound each cell's
wall-clock and retries before quarantine (see :mod:`repro.runtime`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.context import RunContext, current_context, use_context
from repro.experiments.figures import ALL_FIGURES, DEFAULT_SEEDS, run_figure
from repro.experiments.parallel import pool_scope
from repro.experiments.tables import table1_text
from repro.faults import RECOVERY_POLICIES
from repro.online.scheduler import POLICIES

__all__ = ["main"]


def _jobs(value: str) -> int:
    """Argparse type for ``--jobs``: non-negative int (0 = all CPUs)."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"jobs must be an integer, got {value!r}")
    if jobs < 0:
        raise argparse.ArgumentTypeError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _add_jobs_and_stats(parser: argparse.ArgumentParser, what: str) -> None:
    parser.add_argument(
        "--jobs", type=_jobs, default=1,
        help=f"worker processes for the {what} (0 = all CPUs, 1 = in-process)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (LP solves, wall time, LP-cache and "
        "scenario-memo hit rates) at the end",
    )


def _add_obs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable span tracing and write a Chrome trace_event JSON "
        "here (loadable in chrome://tracing and ui.perfetto.dev)",
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help="enable span tracing and write a JSONL event log here "
        "(one span/counter/histogram per line)",
    )


def _add_start_method(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="multiprocessing start method for --jobs > 1",
    )


def _add_reference(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--reference", action="store_true",
        help="run the seed-era reference implementations (scalar cost "
        "tables, dense LP assembly, naive greedy DTA; all caches off) — "
        "output is bit-identical to the optimised default, only slower",
    )


def _add_batch(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="pool each sweep column's LP relaxations into one "
        "block-diagonal mega-solve (--no-batch solves sequentially; "
        "output is identical either way; --reference implies --no-batch)",
    )


def _shards(value: str) -> int:
    """Argparse type for ``--shards``: non-negative int (0 = monolithic)."""
    try:
        shards = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shards must be an integer, got {value!r}"
        )
    if shards < 0:
        raise argparse.ArgumentTypeError(f"shards must be >= 0, got {shards}")
    return shards


def _add_shards(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=_shards, default=0,
        help="partition each system into this many station shards and "
        "route LP-HTA through the per-shard solver (0 = monolithic; "
        "output is bit-identical for any shard count; --reference "
        "ignores sharding)",
    )


def _positive_attempts(value: str) -> int:
    """Argparse type for ``--max-attempts``: positive int."""
    try:
        attempts = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"max-attempts must be an integer, got {value!r}"
        )
    if attempts < 1:
        raise argparse.ArgumentTypeError(f"max-attempts must be >= 1, got {attempts}")
    return attempts


def _timeout(value: str) -> float:
    """Argparse type for ``--cell-timeout``: non-negative seconds."""
    try:
        seconds = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cell-timeout must be a number of seconds, got {value!r}"
        )
    if seconds < 0:
        raise argparse.ArgumentTypeError(f"cell-timeout must be >= 0, got {seconds}")
    return seconds


def _add_runtime(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="checkpoint completed sweep cells to this append-only "
        "journal; a later run with --resume replays them byte-identically "
        "instead of recomputing",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay cells already recorded in --journal and compute "
        "only the rest (requires --journal)",
    )
    parser.add_argument(
        "--cell-timeout", type=_timeout, default=0.0, metavar="SECONDS",
        help="wall-clock budget per sweep cell when --jobs > 1 "
        "(0 = no timeout); a timed-out cell is retried, then quarantined",
    )
    parser.add_argument(
        "--max-attempts", type=_positive_attempts, default=2, metavar="N",
        help="attempts per sweep cell before it is quarantined "
        "(recorded with its traceback and skipped, not fatal)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mecrepro",
        description=(
            "Reproduce 'Task Assignment Algorithms in Data Shared Mobile "
            "Edge Computing Systems' (ICDCS 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table I (wireless network parameters)")

    figure = sub.add_parser("figure", help="regenerate one figure's data")
    figure.add_argument("figure_id", choices=sorted(ALL_FIGURES))
    figure.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="scenario seeds to average over",
    )
    figure.add_argument(
        "--chart", action="store_true",
        help="also render an ASCII chart of the series",
    )
    _add_reference(figure)
    _add_batch(figure)
    _add_shards(figure)
    _add_jobs_and_stats(figure, "sweep")
    _add_start_method(figure)
    _add_runtime(figure)
    _add_obs(figure)

    all_figures = sub.add_parser("all-figures", help="regenerate every figure")
    all_figures.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="scenario seeds to average over",
    )
    _add_reference(all_figures)
    _add_batch(all_figures)
    _add_shards(all_figures)
    _add_jobs_and_stats(all_figures, "sweeps")
    _add_start_method(all_figures)
    _add_runtime(all_figures)
    _add_obs(all_figures)

    demo = sub.add_parser("demo", help="run every figure algorithm on one scenario")
    demo.add_argument("--tasks", type=int, default=200)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (LP solves, wall time, LP-cache and "
        "scenario-memo hit rates) at the end",
    )
    _add_obs(demo)

    report = sub.add_parser(
        "report",
        help="run one figure and print the per-stage latency breakdown",
    )
    report.add_argument(
        "--figure", dest="figure_id", choices=sorted(ALL_FIGURES),
        default="fig2a", help="figure whose sweep to run and profile",
    )
    report.add_argument(
        "--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS),
        help="scenario seeds to average over",
    )
    _add_batch(report)
    _add_shards(report)
    _add_jobs_and_stats(report, "sweep")
    _add_start_method(report)
    _add_runtime(report)
    _add_obs(report)

    ratio = sub.add_parser(
        "ratio-study",
        help="measure LP-HTA's empirical ratio against exact optima",
    )
    ratio.add_argument(
        "--instances", type=int, default=20,
        help="number of small instances to solve exactly",
    )

    online = sub.add_parser(
        "online", help="epoch-scheduled Poisson arrivals, optionally mobile"
    )
    online.add_argument("--policy", choices=POLICIES, default=POLICIES[0])
    online.add_argument("--rate", type=float, default=0.5, help="arrivals/second")
    online.add_argument("--horizon", type=float, default=600.0, help="seconds")
    online.add_argument("--epoch", type=float, default=60.0, help="epoch length, s")
    online.add_argument(
        "--mobile", action="store_true",
        help="devices move (random waypoint); audits quasi-static drift",
    )
    online.add_argument("--seed", type=int, default=0)
    online.add_argument(
        "--stats", action="store_true",
        help="print run telemetry (LP solves, wall time, LP-cache and "
        "scenario-memo hit rates) at the end",
    )
    _add_obs(online)

    resilience = sub.add_parser(
        "resilience",
        help="sweep failure intensity: recovery policies vs fail-stop baseline",
    )
    resilience.add_argument(
        "--intensities", type=float, nargs="+", default=None,
        help="outage arrival rates (1/s) to sweep",
    )
    resilience.add_argument(
        "--policies", choices=RECOVERY_POLICIES, nargs="+",
        default=list(RECOVERY_POLICIES),
        help="recovery policies to compare",
    )
    resilience.add_argument(
        "--seeds", type=int, nargs="+", default=[0],
        help="scenario/fault seeds to average over",
    )
    resilience.add_argument(
        "--policy", choices=POLICIES, default=POLICIES[0],
        help="planning policy run every epoch",
    )
    resilience.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="multiprocessing start method for --jobs > 1",
    )
    resilience.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the canonical recovery-event trace JSON here "
        "(bit-identical across start methods for a fixed seed)",
    )
    resilience.add_argument(
        "--chart", action="store_true",
        help="also render ASCII charts of the two series",
    )
    _add_jobs_and_stats(resilience, "sweep")
    return parser


def _demo(tasks: int, seed: int) -> None:
    from repro import registry
    from repro.core import LPHTAOptions, lp_hta
    from repro.experiments.breakdown import energy_breakdown
    from repro.registry import LP_HTA
    from repro.workload import PAPER_DEFAULTS, generate_scenario

    scenario = generate_scenario(PAPER_DEFAULTS.with_updates(num_tasks=tasks), seed)
    print(f"scenario: {scenario.system}, {len(scenario.tasks)} tasks, seed={seed}")
    report = lp_hta(scenario.system, list(scenario.tasks), LPHTAOptions())
    stats = report.assignment.stats()
    print(
        f"{LP_HTA:11s} energy={stats.total_energy_j:10.1f} J  "
        f"latency={stats.mean_latency_s:5.2f} s  "
        f"unsatisfied={stats.unsatisfied_rate:6.3f}  "
        f"(ratio bound ≤ {report.ratio_bound_theorem2:.2f})"
    )
    for algorithm in registry.algorithms(holistic=True, in_figures=True):
        if algorithm.name == LP_HTA:
            continue
        result = registry.run(algorithm.name, scenario)
        print(
            f"{result.name:11s} energy={result.total_energy_j:10.1f} J  "
            f"latency={result.mean_latency_s:5.2f} s  "
            f"unsatisfied={result.unsatisfied_rate:6.3f}"
        )
    print("\nLP-HTA energy breakdown:")
    breakdown = energy_breakdown(
        scenario.system, list(scenario.tasks), report.assignment
    )
    for line in breakdown.format_table().splitlines():
        print(f"  {line}")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.

    :param argv: arguments (defaults to ``sys.argv[1:]``).
    :returns: process exit code.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "journal", None):
        parser.error("--resume requires --journal PATH")
    # One fresh context per invocation: telemetry counts exactly this run.
    # Tracing turns on only when an exporter will consume the spans.
    trace = bool(
        getattr(args, "trace", None) or getattr(args, "log_json", None)
    )
    runtime = dict(
        max_attempts=getattr(args, "max_attempts", 2),
        cell_timeout_s=getattr(args, "cell_timeout", 0.0),
        journal_path=getattr(args, "journal", None),
        resume=getattr(args, "resume", False),
    )
    if getattr(args, "reference", False):
        # Reference runs are the differential-testing baseline: no
        # batching, no sharding, whatever --batch/--shards say.
        context = RunContext(
            reference=True, vectorized_costs=False, cached_costs=False,
            trace=trace, lp_batch=False, **runtime,
        )
    else:
        context = RunContext(
            trace=trace, lp_batch=getattr(args, "batch", True),
            shards=getattr(args, "shards", 0), **runtime,
        )
    with use_context(context), pool_scope():
        _dispatch(args)
    if getattr(args, "stats", False):
        print()
        print(context.telemetry.summary())
    if getattr(args, "trace", None):
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(context.telemetry, args.trace)
        print(f"trace written to {args.trace}")
    if getattr(args, "log_json", None):
        from repro.obs.export import write_jsonl

        write_jsonl(context.telemetry, args.log_json)
        print(f"JSONL event log written to {args.log_json}")
    return 0


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "table1":
        print(table1_text())
    elif args.command == "figure":
        data = run_figure(
            args.figure_id, seeds=tuple(args.seeds), jobs=args.jobs,
            start_method=args.start_method,
        )
        print(data.format_table())
        if args.chart:
            print()
            print(data.render_ascii())
    elif args.command == "all-figures":
        for figure_id in sorted(ALL_FIGURES):
            print(
                run_figure(
                    figure_id, seeds=tuple(args.seeds), jobs=args.jobs,
                    start_method=args.start_method,
                ).format_table()
            )
            print()
    elif args.command == "report":
        from repro.obs.export import stage_report

        run_figure(
            args.figure_id, seeds=tuple(args.seeds), jobs=args.jobs,
            start_method=args.start_method,
        )
        print(
            f"{args.figure_id} over seeds "
            f"{','.join(str(s) for s in args.seeds)}:"
        )
        print()
        print(stage_report(current_context().telemetry))
    elif args.command == "demo":
        _demo(args.tasks, args.seed)
    elif args.command == "ratio-study":
        from repro.experiments.ratio_study import run_ratio_study

        study = run_ratio_study(seeds=tuple(range(args.instances)))
        print(
            f"LP-HTA vs exact optimum over {study.summary.n} instances "
            f"({study.skipped} skipped):"
        )
        print(f"  ratio {study.summary.format()}")
        print(f"  worst observed      {study.summary.maximum:.4f}")
        print(f"  Theorem 2 violations {study.bound_violations}")
    elif args.command == "online":
        _online(args)
    elif args.command == "resilience":
        _resilience(args)


def _online(args: argparse.Namespace) -> None:
    from repro.mobility import RandomWaypointModel
    from repro.online import OnlineOptions, PoissonArrivals, simulate_online
    from repro.workload import PAPER_DEFAULTS, generate_system

    system = generate_system(PAPER_DEFAULTS, seed=args.seed)
    arrivals = PoissonArrivals(
        system, PAPER_DEFAULTS, rate_per_s=args.rate, seed=args.seed + 1
    ).generate(args.horizon)
    mobility = None
    if args.mobile:
        positions = {d: dev.position for d, dev in system.devices.items()}
        mobility = RandomWaypointModel(
            sorted(system.devices), area_side_m=2000.0,
            speed_range_mps=(2.0, 15.0), seed=args.seed + 2,
            initial_positions=positions,
        )
    report = simulate_online(
        system, arrivals,
        OnlineOptions(epoch_length_s=args.epoch, policy=args.policy),
        mobility=mobility,
        context=current_context(),
    )
    print(
        f"{report.policy}: {report.total_tasks} tasks over "
        f"{len(report.epochs)} epochs of {args.epoch:.0f} s"
    )
    print(f"  planned energy  {report.total_planned_energy_j:10.1f} J")
    print(f"  realized energy {report.total_realized_energy_j:10.1f} J "
          f"(drift {report.drift_energy_gap_j:+.1f} J)")
    print(f"  realized miss rate {report.mean_realized_unsatisfied:.3f}")
    if mobility is not None:
        print(f"  handovers {sum(e.handovers for e in report.epochs)}")


def _resilience(args: argparse.Namespace) -> None:
    from repro.experiments.resilience import DEFAULT_INTENSITIES, resilience_sweep

    intensities = (
        tuple(args.intensities)
        if args.intensities is not None
        else DEFAULT_INTENSITIES
    )
    study = resilience_sweep(
        intensities=intensities,
        policies=tuple(args.policies),
        seeds=tuple(args.seeds),
        policy=args.policy,
        jobs=args.jobs,
        start_method=args.start_method,
    )
    energy = study.energy_series()
    miss = study.miss_series()
    print(energy.format_table())
    print()
    print(miss.format_table())
    if args.chart:
        print()
        print(energy.render_ascii())
        print()
        print(miss.render_ascii())
    if args.trace_out is not None:
        with open(args.trace_out, "w") as handle:
            handle.write(study.trace_json())
            handle.write("\n")
        print(f"\nrecovery-event trace written to {args.trace_out}")


if __name__ == "__main__":
    sys.exit(main())
