"""The three subsystem levels: mobile devices, base stations, the cloud.

Defaults follow Section V-A of the paper: device CPU frequencies in
[1 GHz, 2 GHz], base stations at 4 GHz, and the cloud modelled on an Amazon
T2.nano at 2.4 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.system.radio import WirelessProfile
from repro.units import gigahertz

__all__ = [
    "BaseStation",
    "Cloud",
    "DEFAULT_CLOUD_FREQUENCY_HZ",
    "DEFAULT_STATION_FREQUENCY_HZ",
    "MobileDevice",
]

#: Base-station CPU frequency (Section V-A): 4 GHz.
DEFAULT_STATION_FREQUENCY_HZ = gigahertz(4.0)

#: Cloud CPU frequency (Section V-A, Amazon T2.nano): 2.4 GHz.
DEFAULT_CLOUD_FREQUENCY_HZ = gigahertz(2.4)


@dataclass(frozen=True)
class MobileDevice:
    """A first-level subsystem: one user's mobile device.

    :param device_id: unique non-negative integer id (the paper's index *i*).
    :param cpu_frequency_hz: :math:`f_i`, in [1 GHz, 2 GHz] by default.
    :param wireless: the device's radio access profile (4G or Wi-Fi).
    :param max_resource: :math:`max_i`, the computation-resource cap of
        constraint C2 (abstract units, e.g. MB of memory).
    :param data_items: ids of data items the device owns (:math:`D_i`);
        used by the divisible-task algorithms of Section IV.
    :param position: optional (x, y) coordinates, metres; used by the
        spatial workload generators and examples, not by the algorithms.
    """

    device_id: int
    cpu_frequency_hz: float
    wireless: WirelessProfile
    max_resource: float
    data_items: FrozenSet[int] = field(default_factory=frozenset)
    position: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise ValueError("device_id must be non-negative")
        if self.cpu_frequency_hz <= 0:
            raise ValueError("cpu_frequency_hz must be positive")
        if self.max_resource < 0:
            raise ValueError("max_resource must be non-negative")

    def owns(self, item_id: int) -> bool:
        """Whether this device holds data item ``item_id`` locally."""
        return item_id in self.data_items


@dataclass(frozen=True)
class BaseStation:
    """A second-level subsystem: a base station hosting a small-scale cloud.

    :param station_id: unique non-negative integer id (the paper's B_r).
    :param cpu_frequency_hz: :math:`f_s` (4 GHz by default).
    :param max_resource: :math:`max_S`, the resource cap of constraint C3.
    :param position: optional (x, y) coordinates for spatial scenarios.
    """

    station_id: int
    cpu_frequency_hz: float = DEFAULT_STATION_FREQUENCY_HZ
    max_resource: float = float("inf")
    position: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if self.station_id < 0:
            raise ValueError("station_id must be non-negative")
        if self.cpu_frequency_hz <= 0:
            raise ValueError("cpu_frequency_hz must be positive")
        if self.max_resource < 0:
            raise ValueError("max_resource must be non-negative")


@dataclass(frozen=True)
class Cloud:
    """The third-level subsystem: the remote cloud.

    The cloud is assumed resource-unconstrained (the paper places no C-style
    cap on it); only its CPU frequency matters for task latency.

    :param cpu_frequency_hz: :math:`f_c` (2.4 GHz by default).
    """

    cpu_frequency_hz: float = DEFAULT_CLOUD_FREQUENCY_HZ

    def __post_init__(self) -> None:
        if self.cpu_frequency_hz <= 0:
            raise ValueError("cpu_frequency_hz must be positive")
