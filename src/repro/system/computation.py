"""Computation model (Section II-A of the paper).

The paper, following [22], assumes the CPU-cycle demand, energy cost and
result size of a task are all linear in the input size:

- cycles: :math:`\\lambda_{ijl}(y) = \\lambda y` with λ = 330 cycles/byte,
- local compute energy: :math:`E^{(C)}_{ij1} = \\kappa \\lambda(y) f_i^2`
  with κ = 10⁻²⁷ (the effective switched-capacitance constant of [6], [14]),
- result size: :math:`\\eta(y) = \\eta y` with η = 0.2 (or a constant size).

Base-station and cloud compute *energy* is ignored (Section II-A: it is
negligible next to transmission energy), but their compute *time* is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

__all__ = [
    "DEFAULT_CYCLES_PER_BYTE",
    "DEFAULT_KAPPA",
    "DEFAULT_RESULT_RATIO",
    "CyclesModel",
    "ResultSizeModel",
    "compute_energy_j",
    "compute_time_s",
]

#: λ = 330 cycles per input byte, from [22] via Section V-A.
DEFAULT_CYCLES_PER_BYTE = 330.0

#: κ = 10⁻²⁷, the hardware-architecture constant of Eq. (2), from [6], [14].
DEFAULT_KAPPA = 1e-27

#: η = 0.2, the default result-size/input-size ratio of Section V-A.
DEFAULT_RESULT_RATIO = 0.2


def compute_time_s(cycles: float, frequency_hz: float) -> float:
    """Time to execute ``cycles`` on a CPU running at ``frequency_hz``.

    Implements :math:`t^{(C)} = \\lambda(y) / f` from Eqs. (2)–(3).
    """
    if cycles < 0:
        raise ValueError(f"negative cycle count: {cycles}")
    if frequency_hz <= 0:
        raise ValueError(f"non-positive CPU frequency: {frequency_hz}")
    return cycles / frequency_hz


def compute_energy_j(cycles: float, frequency_hz: float, kappa: float = DEFAULT_KAPPA) -> float:
    """Local-execution energy :math:`E^{(C)} = \\kappa \\lambda(y) f^2` (Eq. 2)."""
    if cycles < 0:
        raise ValueError(f"negative cycle count: {cycles}")
    if frequency_hz <= 0:
        raise ValueError(f"non-positive CPU frequency: {frequency_hz}")
    if kappa < 0:
        raise ValueError(f"negative kappa: {kappa}")
    return kappa * cycles * frequency_hz * frequency_hz


@dataclass(frozen=True)
class CyclesModel:
    """CPU-cycle demand :math:`\\lambda_{ijl}(y)` as a function of input size.

    The paper's experiments use the linear model of [22]; per-subsystem
    multipliers allow modelling software stacks whose cycle counts differ by
    platform (λ_{ij1} vs λ_{ij2} vs λ_{ij3} in Eqs. 2–3).  The default is the
    same λ on every subsystem, matching Section V-A.

    :param cycles_per_byte: λ, cycles per input byte.
    :param device_multiplier: factor applied when run on a mobile device.
    :param station_multiplier: factor applied when run on a base station.
    :param cloud_multiplier: factor applied when run on the cloud.
    """

    cycles_per_byte: float = DEFAULT_CYCLES_PER_BYTE
    device_multiplier: float = 1.0
    station_multiplier: float = 1.0
    cloud_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.cycles_per_byte < 0:
            raise ValueError("cycles_per_byte must be non-negative")
        for field in ("device_multiplier", "station_multiplier", "cloud_multiplier"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    def cycles_on_device(self, input_bytes: float) -> float:
        """λ_{ij1}(y): cycles to process ``input_bytes`` on a mobile device."""
        return self.cycles_per_byte * self.device_multiplier * input_bytes

    def cycles_on_station(self, input_bytes: float) -> float:
        """λ_{ij2}(y): cycles to process ``input_bytes`` on a base station."""
        return self.cycles_per_byte * self.station_multiplier * input_bytes

    def cycles_on_cloud(self, input_bytes: float) -> float:
        """λ_{ij3}(y): cycles to process ``input_bytes`` on the cloud."""
        return self.cycles_per_byte * self.cloud_multiplier * input_bytes


ResultSizeFn = Callable[[float], float]


@dataclass(frozen=True)
class ResultSizeModel:
    """Result size :math:`\\eta(y)` as a function of input size.

    Two shapes appear in the paper's experiments (Fig. 5b): proportional
    results (``ratio * y``) and constant-size results (``constant_bytes``
    regardless of input).  Exactly one of the two must describe the model:
    set ``constant_bytes`` to a value >= 0 to select the constant shape.

    :param ratio: η, output bytes per input byte (used when not constant).
    :param constant_bytes: fixed output size; ``None`` selects the ratio form.
    """

    ratio: float = DEFAULT_RESULT_RATIO
    constant_bytes: Union[float, None] = None

    def __post_init__(self) -> None:
        if self.constant_bytes is None and self.ratio < 0:
            raise ValueError("ratio must be non-negative")
        if self.constant_bytes is not None and self.constant_bytes < 0:
            raise ValueError("constant_bytes must be non-negative")

    @property
    def is_constant(self) -> bool:
        """Whether the result size ignores the input size."""
        return self.constant_bytes is not None

    def result_bytes(self, input_bytes: float) -> float:
        """η(y): size of the computation result for ``input_bytes`` of input."""
        if input_bytes < 0:
            raise ValueError(f"negative input size: {input_bytes}")
        if self.constant_bytes is not None:
            return self.constant_bytes
        return self.ratio * input_bytes

    @classmethod
    def proportional(cls, ratio: float) -> "ResultSizeModel":
        """A model where results are ``ratio`` × input size."""
        return cls(ratio=ratio)

    @classmethod
    def constant(cls, size_bytes: float) -> "ResultSizeModel":
        """A model where every result has the same fixed size."""
        return cls(ratio=0.0, constant_bytes=size_bytes)
