"""Multi-user uplink interference (the [9] channel model).

Chen et al. [9] study offloading over *shared* wireless channels: every
concurrent uploader in a cell raises the interference floor the others see,
so per-user Shannon rates fall as more users offload simultaneously — the
congestion externality their offloading game prices.

This module provides that rate model as an alternative to the fixed Table I
profiles: an :class:`InterferenceChannel` yields the per-user rate as a
function of the number of concurrent uploaders, and
:func:`congestion_profiles` materialises the k-user operating points as
ordinary :class:`~repro.system.radio.WirelessProfile` objects so the rest of
the library can price tasks under any assumed concurrency level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.system.radio import WirelessProfile, shannon_rate_bps

__all__ = ["InterferenceChannel", "congestion_profiles"]


@dataclass(frozen=True)
class InterferenceChannel:
    """A shared uplink cell: concurrent transmitters interfere.

    The rate of each of *k* simultaneous uploaders is

    .. math::

       r(k) = W \\log_2\\Bigl(1 +
           \\frac{g P}{\\varpi_0 + (k-1)\\,\\phi\\, g P}\\Bigr),

    where φ ∈ [0, 1] is the orthogonality loss (0 = perfectly orthogonal
    channels, no interference; 1 = fully shared spectrum).

    :param bandwidth_hz: channel bandwidth W.
    :param channel_gain: uplink gain g (identical users, as in [9]).
    :param tx_power_w: per-device transmit power P.
    :param noise_power_w: background noise :math:`\\varpi_0`.
    :param orthogonality_loss: φ, the fraction of a peer's received power
        that lands in-band.
    :param downlink_rate_bps: downlink rate (the base station schedules the
        downlink, so it is not interference-limited here).
    :param rx_power_w: device receive power (for profile materialisation).
    """

    bandwidth_hz: float
    channel_gain: float
    tx_power_w: float
    noise_power_w: float
    orthogonality_loss: float = 1.0
    downlink_rate_bps: float = 13.76e6
    rx_power_w: float = 1.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.orthogonality_loss <= 1.0:
            raise ValueError("orthogonality_loss must be in [0, 1]")
        if self.downlink_rate_bps <= 0:
            raise ValueError("downlink_rate_bps must be positive")
        if self.rx_power_w <= 0:
            raise ValueError("rx_power_w must be positive")
        # The remaining parameters are validated by shannon_rate_bps on use.

    def uplink_rate_bps(self, concurrent_users: int) -> float:
        """Per-user uplink rate with ``concurrent_users`` transmitting.

        :param concurrent_users: k ≥ 1.
        """
        if concurrent_users < 1:
            raise ValueError("concurrent_users must be at least 1")
        interference = (
            (concurrent_users - 1)
            * self.orthogonality_loss
            * self.channel_gain
            * self.tx_power_w
        )
        return shannon_rate_bps(
            self.bandwidth_hz,
            self.channel_gain,
            self.tx_power_w,
            self.noise_power_w + interference,
        )

    def cell_throughput_bps(self, concurrent_users: int) -> float:
        """Aggregate uplink throughput with k users (k · r(k))."""
        return concurrent_users * self.uplink_rate_bps(concurrent_users)

    def to_profile(self, concurrent_users: int, name: str = "") -> WirelessProfile:
        """The k-user operating point as a :class:`WirelessProfile`."""
        return WirelessProfile(
            name=name or f"interference-k{concurrent_users}",
            download_rate_bps=self.downlink_rate_bps,
            upload_rate_bps=self.uplink_rate_bps(concurrent_users),
            tx_power_w=self.tx_power_w,
            rx_power_w=self.rx_power_w,
        )


def congestion_profiles(
    channel: InterferenceChannel, max_users: int
) -> List[WirelessProfile]:
    """The operating points for 1..max_users concurrent uploaders.

    :param channel: the shared cell.
    :param max_users: largest concurrency to materialise.
    """
    if max_users < 1:
        raise ValueError("max_users must be at least 1")
    return [channel.to_profile(k) for k in range(1, max_users + 1)]
