"""Radio access network models (Section II-B and Table I of the paper).

Two complementary models are provided:

- :class:`WirelessProfile` — the fixed-rate profiles of Table I (4G and
  Wi-Fi), which the paper's experiments draw from at random per device.
- :func:`shannon_rate_bps` / :class:`ShannonChannel` — the Shannon-capacity
  formulation the paper cites from [9], [10]:

  .. math::

     r^{(U)}_i = W^{(U)}_i \\log_2\\Bigl(1 + \\frac{g^{(U)}_i P^{(T)}_i}{\\varpi_0}\\Bigr),
     \\qquad
     r^{(D)}_i = W^{(D)}_i \\log_2\\Bigl(1 + \\frac{g^{(D)}_i P^{(S)}}{\\varpi_0}\\Bigr).

The experiments in Section V use the Table I rates directly; the Shannon
model is available for users who want to derive rates from channel state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.units import megabits_per_second, transmission_time_s

__all__ = [
    "FOUR_G",
    "WIFI",
    "TABLE_I_PROFILES",
    "ShannonChannel",
    "WirelessProfile",
    "shannon_rate_bps",
]


@dataclass(frozen=True)
class WirelessProfile:
    """A radio access profile: rates and radio powers for one network type.

    Attributes mirror one row of Table I.

    :param name: human-readable network name (``"4G"`` / ``"Wi-Fi"``).
    :param download_rate_bps: downlink rate seen by the device, bits/s.
    :param upload_rate_bps: uplink rate seen by the device, bits/s.
    :param tx_power_w: device transmission power :math:`P^{(T)}`, watts.
    :param rx_power_w: device receive power :math:`P^{(R)}`, watts.
    """

    name: str
    download_rate_bps: float
    upload_rate_bps: float
    tx_power_w: float
    rx_power_w: float

    def __post_init__(self) -> None:
        if self.download_rate_bps <= 0 or self.upload_rate_bps <= 0:
            raise ValueError(f"{self.name}: rates must be positive")
        if self.tx_power_w <= 0 or self.rx_power_w <= 0:
            raise ValueError(f"{self.name}: powers must be positive")

    def upload_time_s(self, size_bytes: float) -> float:
        """Time to upload ``size_bytes`` from the device to its base station."""
        return transmission_time_s(size_bytes, self.upload_rate_bps)

    def download_time_s(self, size_bytes: float) -> float:
        """Time to download ``size_bytes`` from the base station to the device."""
        return transmission_time_s(size_bytes, self.download_rate_bps)

    def upload_energy_j(self, size_bytes: float) -> float:
        """Device-side energy :math:`e^{(T)}_i(X)` to transmit ``size_bytes``.

        Energy = transmission power × time on air, per [9].
        """
        return self.tx_power_w * self.upload_time_s(size_bytes)

    def download_energy_j(self, size_bytes: float) -> float:
        """Device-side energy :math:`e^{(R)}_i(X)` to receive ``size_bytes``."""
        return self.rx_power_w * self.download_time_s(size_bytes)


#: 4G row of Table I: 13.76 Mbps down, 5.85 Mbps up, 7.32 W tx, 1.6 W rx.
FOUR_G = WirelessProfile(
    name="4G",
    download_rate_bps=megabits_per_second(13.76),
    upload_rate_bps=megabits_per_second(5.85),
    tx_power_w=7.32,
    rx_power_w=1.6,
)

#: Wi-Fi row of Table I: 54.97 Mbps down, 12.88 Mbps up, 15.7 W tx, 2.7 W rx.
WIFI = WirelessProfile(
    name="Wi-Fi",
    download_rate_bps=megabits_per_second(54.97),
    upload_rate_bps=megabits_per_second(12.88),
    tx_power_w=15.7,
    rx_power_w=2.7,
)

#: The two profiles of Table I; devices pick one at random in the experiments.
TABLE_I_PROFILES = (FOUR_G, WIFI)


def shannon_rate_bps(
    bandwidth_hz: float,
    channel_gain: float,
    power_w: float,
    noise_power_w: float,
) -> float:
    """Shannon capacity :math:`W \\log_2(1 + gP/\\varpi_0)` in bits/s.

    :param bandwidth_hz: allocated channel bandwidth :math:`W`.
    :param channel_gain: dimensionless channel gain :math:`g`.
    :param power_w: transmit power :math:`P`.
    :param noise_power_w: white-noise power :math:`\\varpi_0`.
    """
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    if noise_power_w <= 0:
        raise ValueError("noise power must be positive")
    if channel_gain < 0 or power_w < 0:
        raise ValueError("gain and power must be non-negative")
    return bandwidth_hz * math.log2(1.0 + channel_gain * power_w / noise_power_w)


@dataclass(frozen=True)
class ShannonChannel:
    """A device↔station channel described by physical-layer parameters.

    Produces a :class:`WirelessProfile` via :meth:`to_profile`, so Shannon
    derived rates can be dropped anywhere a Table I profile is accepted.

    :param uplink_bandwidth_hz: :math:`W^{(U)}_i`.
    :param downlink_bandwidth_hz: :math:`W^{(D)}_i`.
    :param uplink_gain: :math:`g^{(U)}_i`.
    :param downlink_gain: :math:`g^{(D)}_i`.
    :param device_tx_power_w: :math:`P^{(T)}_i`.
    :param station_tx_power_w: :math:`P^{(S)}`.
    :param device_rx_power_w: device receive power (radio listening cost).
    :param noise_power_w: :math:`\\varpi_0`.
    """

    uplink_bandwidth_hz: float
    downlink_bandwidth_hz: float
    uplink_gain: float
    downlink_gain: float
    device_tx_power_w: float
    station_tx_power_w: float
    device_rx_power_w: float
    noise_power_w: float

    def uplink_rate_bps(self) -> float:
        """Uplink Shannon rate :math:`r^{(U)}_i`."""
        return shannon_rate_bps(
            self.uplink_bandwidth_hz,
            self.uplink_gain,
            self.device_tx_power_w,
            self.noise_power_w,
        )

    def downlink_rate_bps(self) -> float:
        """Downlink Shannon rate :math:`r^{(D)}_i`."""
        return shannon_rate_bps(
            self.downlink_bandwidth_hz,
            self.downlink_gain,
            self.station_tx_power_w,
            self.noise_power_w,
        )

    def to_profile(self, name: str = "shannon") -> WirelessProfile:
        """Materialise the channel as a fixed-rate :class:`WirelessProfile`."""
        return WirelessProfile(
            name=name,
            download_rate_bps=self.downlink_rate_bps(),
            upload_rate_bps=self.uplink_rate_bps(),
            tx_power_w=self.device_tx_power_w,
            rx_power_w=self.device_rx_power_w,
        )
