"""Backhaul links: base-station↔base-station and base-station↔cloud.

The paper fixes the two latencies (15 ms between base stations, after [15];
250 ms from a base station to the Amazon cloud, after [16]) and asserts that
transmitting via the cloud is strictly more expensive than via a neighbouring
base station (:math:`E^{(R)}_{ij3} > E^{(R)}_{ij2}`).  It does not publish
backhaul bandwidths or per-byte energies, so we pick documented defaults that
preserve that ordering:

- the BS–BS link is a metro fibre: 1 Gbps, 0.1 µJ/byte;
- the BS–cloud link is a WAN path: 300 Mbps, 0.6 µJ/byte.

Since the cloud path carries *more* bytes (α+β+η(α+β) versus β) at a strictly
higher per-byte energy, ``E_ij3 > E_ij2`` holds for every task.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import milliseconds, transmission_time_s

__all__ = [
    "BackhaulLink",
    "CloudLink",
    "DEFAULT_BS_BS_LINK",
    "DEFAULT_BS_CLOUD_LINK",
]


@dataclass(frozen=True)
class BackhaulLink:
    """A wired link with fixed latency, finite bandwidth and per-byte energy.

    :param latency_s: one-way propagation/forwarding latency, seconds.
    :param bandwidth_bps: link bandwidth, bits/s.
    :param energy_per_byte_j: infrastructure energy to move one byte, joules.
    """

    latency_s: float
    bandwidth_bps: float
    energy_per_byte_j: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_per_byte_j < 0:
            raise ValueError("per-byte energy must be non-negative")

    def transfer_time_s(self, size_bytes: float) -> float:
        """Latency plus serialisation time for ``size_bytes``.

        A zero-byte transfer costs nothing: no message, no latency.
        """
        if size_bytes == 0:
            return 0.0
        return self.latency_s + transmission_time_s(size_bytes, self.bandwidth_bps)

    def transfer_energy_j(self, size_bytes: float) -> float:
        """Energy to move ``size_bytes`` across the link."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size: {size_bytes}")
        return self.energy_per_byte_j * size_bytes


class CloudLink(BackhaulLink):
    """Marker subclass for base-station↔cloud links (same behaviour)."""


#: t_{B,B}: 15 ms latency per [15], metro-fibre bandwidth and energy.
DEFAULT_BS_BS_LINK = BackhaulLink(
    latency_s=milliseconds(15.0),
    bandwidth_bps=1e9,
    energy_per_byte_j=1e-7,
)

#: t_{B,C}: 250 ms latency per [16] (Amazon T2.nano ping), WAN path.
DEFAULT_BS_CLOUD_LINK = CloudLink(
    latency_s=milliseconds(250.0),
    bandwidth_bps=3e8,
    energy_per_byte_j=6e-7,
)
