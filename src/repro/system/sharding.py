"""Sharded views of a city-scale MEC system.

The paper's quasi-static cluster assumption already makes clusters
independent: a task runs on its own device, its own base station, or the
shared cloud (Section III-A).  A *shard* groups whole clusters, so a shard
is itself a standalone :class:`~repro.system.topology.MECSystem` — the
per-cluster solves inside it are exactly the monolithic solves — and the
only resources shards share are the cloud (and, in coordinated variants,
out-of-shard station capacity).  This module provides the partitioning
layer:

- :class:`ShardSpec` — which stations belong to which shard,
- :class:`ShardView` — one shard as a standalone ``MECSystem`` plus the
  rows of the global task list it owns,
- :class:`ShardManifest` — the shared-resource bookkeeping (cloud budget,
  halo devices/stations, cross-shard station capacity),
- :class:`ShardedSystem` — a monolithic system plus a spec, producing the
  views.

**Halos.**  A task's cost row depends on its external data source: the
source device's wireless profile and whether it shares the owner's cluster
(Section II-B cases).  Shard views therefore include out-of-shard source
devices — and their stations, so attachments stay valid — as a read-only
*halo*.  Halo stations never receive tasks (tasks are grouped by their
owner's cluster), which keeps the shard's cost rows bitwise equal to the
corresponding rows of the monolithic cost table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.system.topology import MECSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.task import Task

__all__ = ["ShardManifest", "ShardSpec", "ShardView", "ShardedSystem"]


@dataclass(frozen=True)
class ShardSpec:
    """A partition of station ids into shards.

    :param shards: per-shard tuples of station ids.  Shards must be
        non-empty and pairwise disjoint; ids within a shard are kept
        sorted.  Whether the spec *covers* a concrete system's stations is
        checked by :class:`ShardedSystem`, which binds a spec to a system.
    """

    shards: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.shards:
            raise ValueError("a ShardSpec needs at least one shard")
        normalized: List[Tuple[int, ...]] = []
        seen: Dict[int, int] = {}
        for shard_id, stations in enumerate(self.shards):
            ordered = tuple(sorted(stations))
            if not ordered:
                raise ValueError(f"shard {shard_id} is empty")
            if len(set(ordered)) != len(ordered):
                raise ValueError(f"shard {shard_id} repeats a station id")
            for station_id in ordered:
                if station_id in seen:
                    raise ValueError(
                        f"station {station_id} appears in shards "
                        f"{seen[station_id]} and {shard_id}"
                    )
                seen[station_id] = shard_id
            normalized.append(ordered)
        object.__setattr__(self, "shards", tuple(normalized))

    @classmethod
    def balanced(cls, station_ids: Iterable[int], num_shards: int) -> "ShardSpec":
        """A contiguous, near-even split of the sorted station ids.

        ``num_shards`` is clamped to ``[1, len(station_ids)]``; the first
        ``len % num_shards`` shards take one extra station.  Contiguity
        matters to the streaming tile generator
        (:mod:`repro.workload.streaming`), which maps round-robin device
        attachment onto contiguous station ranges.

        :param station_ids: the stations to partition.
        :param num_shards: requested shard count.
        """
        ordered = sorted(station_ids)
        if not ordered:
            raise ValueError("cannot shard an empty station set")
        count = max(1, min(num_shards, len(ordered)))
        base, extra = divmod(len(ordered), count)
        shards: List[Tuple[int, ...]] = []
        cursor = 0
        for shard_id in range(count):
            size = base + (1 if shard_id < extra else 0)
            shards.append(tuple(ordered[cursor : cursor + size]))
            cursor += size
        return cls(tuple(shards))

    @property
    def num_shards(self) -> int:
        """Number of shards in the partition."""
        return len(self.shards)

    @property
    def station_ids(self) -> Tuple[int, ...]:
        """Every station id covered by the spec (sorted)."""
        return tuple(sorted(sid for shard in self.shards for sid in shard))

    def shard_of(self, station_id: int) -> int:
        """The shard owning ``station_id``.

        :raises KeyError: for stations outside the spec.
        """
        lookup = self.__dict__.get("_shard_of")
        if lookup is None:
            lookup = {
                sid: shard_id
                for shard_id, shard in enumerate(self.shards)
                for sid in shard
            }
            # Frozen dataclass: memoise via __dict__ to bypass __setattr__.
            self.__dict__["_shard_of"] = lookup
        return lookup[station_id]


@dataclass(frozen=True)
class ShardManifest:
    """Shared-resource bookkeeping for one shard.

    :param shard_id: index of the shard in its :class:`ShardSpec`.
    :param core_stations: stations owned (and capacity-enforced) by this
        shard.
    :param core_devices: devices attached to the core stations.
    :param halo_devices: out-of-shard devices included read-only as
        external data sources of the shard's tasks.
    :param halo_stations: the halo devices' stations (attachment targets
        only — they never receive this shard's tasks).
    :param cloud_capacity: this shard's view of the shared cloud budget
        (``inf`` = uncapped, the paper's model).  A finite budget is
        reconciled across shards by the Lagrangian coordinator
        (:func:`repro.core.sharded.lp_hta_sharded`).
    :param cross_shard_station_caps: ``(station_id, max_resource)`` of each
        halo station — capacity owned and enforced by *another* shard.
    """

    shard_id: int
    core_stations: Tuple[int, ...]
    core_devices: Tuple[int, ...]
    halo_devices: Tuple[int, ...]
    halo_stations: Tuple[int, ...]
    cloud_capacity: float = float("inf")
    cross_shard_station_caps: Tuple[Tuple[int, float], ...] = ()


@dataclass(frozen=True)
class ShardView:
    """One shard, ready to solve on its own.

    :param shard_id: index of the shard in its spec.
    :param system: the shard as a standalone system (core + halo).
    :param task_rows: indices into the *global* task list of the tasks this
        shard owns (owner device attached to a core station), in global
        order.
    :param manifest: the shared-resource manifest.
    """

    shard_id: int
    system: MECSystem
    task_rows: Tuple[int, ...]
    manifest: ShardManifest


class ShardedSystem:
    """A monolithic :class:`MECSystem` partitioned by a :class:`ShardSpec`.

    :param system: the global system.
    :param spec: the partition; must cover exactly the system's stations.
    """

    def __init__(self, system: MECSystem, spec: ShardSpec) -> None:
        spec_stations = set(spec.station_ids)
        system_stations = set(system.stations)
        if spec_stations != system_stations:
            missing = sorted(system_stations - spec_stations)
            extra = sorted(spec_stations - system_stations)
            raise ValueError(
                "shard spec must cover exactly the system's stations "
                f"(missing {missing}, unknown {extra})"
            )
        self._system = system
        self._spec = spec

    @property
    def system(self) -> MECSystem:
        """The underlying monolithic system."""
        return self._system

    @property
    def spec(self) -> ShardSpec:
        """The station partition."""
        return self._spec

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return self._spec.num_shards

    def shard_of_device(self, device_id: int) -> int:
        """The shard owning ``device_id`` (through its station)."""
        return self._spec.shard_of(self._system.cluster_of(device_id))

    def views(
        self,
        tasks: Sequence[Task],
        cloud_capacity: float = float("inf"),
    ) -> Tuple[ShardView, ...]:
        """Build the per-shard views for a concrete task list.

        Shards whose stations have no attached devices produce no view
        (there is nothing to solve — a standalone system needs at least
        one device) but still appear in :meth:`manifests`.

        :param tasks: the global task list; rows are split by the owner
            device's shard.
        :param cloud_capacity: shared cloud budget recorded in each
            manifest (the budget itself is global, not per-shard).
        """
        system = self._system
        rows_by_shard: List[List[int]] = [[] for _ in range(self.num_shards)]
        for row, task in enumerate(tasks):
            rows_by_shard[self.shard_of_device(task.owner_device_id)].append(row)

        views: List[ShardView] = []
        for shard_id, core_stations in enumerate(self._spec.shards):
            core_station_set = set(core_stations)
            core_devices = [
                device_id
                for station_id in core_stations
                for device_id in system.cluster_members(station_id)
            ]
            if not core_devices:
                continue
            core_device_set = set(core_devices)
            halo_devices: List[int] = []
            halo_seen = set()
            for row in rows_by_shard[shard_id]:
                source = tasks[row].external_source
                if (
                    source is not None
                    and source not in core_device_set
                    and source not in halo_seen
                ):
                    halo_seen.add(source)
                    halo_devices.append(source)
            halo_devices.sort()
            halo_stations = sorted(
                {system.cluster_of(d) for d in halo_devices} - core_station_set
            )

            device_ids = sorted(core_device_set | halo_seen)
            station_ids = sorted(core_station_set | set(halo_stations))
            sub_system = MECSystem(
                devices=[system.device(d) for d in device_ids],
                stations=[system.station(s) for s in station_ids],
                attachment={d: system.cluster_of(d) for d in device_ids},
                cloud=system.cloud,
                bs_bs_link=system.bs_bs_link,
                bs_cloud_link=system.bs_cloud_link,
                parameters=system.parameters,
            )
            manifest = ShardManifest(
                shard_id=shard_id,
                core_stations=tuple(core_stations),
                core_devices=tuple(sorted(core_device_set)),
                halo_devices=tuple(halo_devices),
                halo_stations=tuple(halo_stations),
                cloud_capacity=cloud_capacity,
                cross_shard_station_caps=tuple(
                    (s, system.station(s).max_resource) for s in halo_stations
                ),
            )
            views.append(
                ShardView(
                    shard_id=shard_id,
                    system=sub_system,
                    task_rows=tuple(rows_by_shard[shard_id]),
                    manifest=manifest,
                )
            )
        return tuple(views)

    def manifests(self, cloud_capacity: float = float("inf")) -> Tuple[ShardManifest, ...]:
        """Task-independent manifests for *every* shard (including empty
        ones — e.g. clusters drained by device departures)."""
        system = self._system
        out: List[ShardManifest] = []
        for shard_id, core_stations in enumerate(self._spec.shards):
            core_devices = tuple(
                device_id
                for station_id in core_stations
                for device_id in system.cluster_members(station_id)
            )
            out.append(
                ShardManifest(
                    shard_id=shard_id,
                    core_stations=tuple(core_stations),
                    core_devices=tuple(sorted(core_devices)),
                    halo_devices=(),
                    halo_stations=(),
                    cloud_capacity=cloud_capacity,
                )
            )
        return tuple(out)

    def __repr__(self) -> str:
        return (
            f"ShardedSystem(shards={self.num_shards}, "
            f"stations={self._system.num_stations}, "
            f"devices={self._system.num_devices})"
        )
