"""MEC system substrate: devices, radio links, energy/time/computation models.

This package implements the three-level Mobile Edge Computing system of
Section II of the paper: mobile devices connected to base stations by radio
access networks (clusters), base stations connected to each other and to a
remote cloud by backhaul links.
"""

from repro.system.computation import CyclesModel, ResultSizeModel, compute_energy_j, compute_time_s
from repro.system.devices import BaseStation, Cloud, MobileDevice
from repro.system.interference import InterferenceChannel, congestion_profiles
from repro.system.links import BackhaulLink, CloudLink, DEFAULT_BS_BS_LINK, DEFAULT_BS_CLOUD_LINK
from repro.system.radio import (
    FOUR_G,
    WIFI,
    ShannonChannel,
    WirelessProfile,
    shannon_rate_bps,
)
from repro.system.sharding import ShardManifest, ShardSpec, ShardView, ShardedSystem
from repro.system.topology import MECSystem, SystemParameters, nearest_station_attachment

__all__ = [
    "BackhaulLink",
    "InterferenceChannel",
    "congestion_profiles",
    "BaseStation",
    "Cloud",
    "CloudLink",
    "CyclesModel",
    "DEFAULT_BS_BS_LINK",
    "DEFAULT_BS_CLOUD_LINK",
    "FOUR_G",
    "MECSystem",
    "MobileDevice",
    "ResultSizeModel",
    "ShannonChannel",
    "ShardManifest",
    "ShardSpec",
    "ShardView",
    "ShardedSystem",
    "SystemParameters",
    "WIFI",
    "WirelessProfile",
    "compute_energy_j",
    "compute_time_s",
    "nearest_station_attachment",
    "shannon_rate_bps",
]
