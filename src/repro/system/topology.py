"""The MEC system: clusters of devices around base stations, plus the cloud.

A :class:`MECSystem` is the quasi-static snapshot the paper assumes: each
mobile device is attached to exactly one base station for the whole planning
period, base stations are pairwise connected by a backhaul link, and every
base station reaches the remote cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Tuple

import networkx as nx

from repro.system.computation import (
    DEFAULT_KAPPA,
    CyclesModel,
    ResultSizeModel,
)
from repro.system.devices import BaseStation, Cloud, MobileDevice
from repro.system.links import (
    DEFAULT_BS_BS_LINK,
    DEFAULT_BS_CLOUD_LINK,
    BackhaulLink,
)

__all__ = ["MECSystem", "SystemParameters", "nearest_station_attachment"]


def nearest_station_attachment(
    devices: Iterable[MobileDevice],
    stations: Iterable[BaseStation],
) -> Dict[int, int]:
    """Attach every device to its nearest base station (Euclidean).

    Distance ties — a device exactly equidistant from two stations — break
    deterministically to the lowest station id, so the resulting clusters
    are reproducible regardless of input ordering.

    :param devices: devices with positions.
    :param stations: candidate stations with positions.
    :raises ValueError: if any device or station has no position, or no
        stations are given.
    :returns: ``device_id -> station_id``.
    """
    placed = sorted(stations, key=lambda s: s.station_id)
    if not placed:
        raise ValueError("nearest_station_attachment needs at least one station")
    for station in placed:
        if station.position is None:
            raise ValueError(f"station {station.station_id} has no position")
    attachment: Dict[int, int] = {}
    for device in devices:
        if device.position is None:
            raise ValueError(f"device {device.device_id} has no position")
        dx, dy = device.position
        best_id = -1
        best_sq = float("inf")
        for station in placed:  # ascending ids: first win = lowest id on ties
            sx, sy = station.position
            dist_sq = (dx - sx) ** 2 + (dy - sy) ** 2
            if dist_sq < best_sq:
                best_sq = dist_sq
                best_id = station.station_id
        attachment[device.device_id] = best_id
    return attachment


@dataclass(frozen=True)
class SystemParameters:
    """System-wide modelling constants (Section V-A defaults).

    :param kappa: κ, the chip constant of the local-energy model (Eq. 2).
    :param cycles: the CPU-cycle demand model λ(y).
    :param result_size: the result-size model η(y).
    """

    kappa: float = DEFAULT_KAPPA
    cycles: CyclesModel = field(default_factory=CyclesModel)
    result_size: ResultSizeModel = field(default_factory=ResultSizeModel)


class MECSystem:
    """A three-level MEC system (Fig. 1 of the paper).

    :param devices: the mobile devices (level 1).
    :param stations: the base stations (level 2).
    :param attachment: mapping ``device_id -> station_id`` (the quasi-static
        radio association; defines the clusters).
    :param cloud: the remote cloud (level 3).
    :param bs_bs_link: backhaul link model between any two base stations.
    :param bs_cloud_link: link model between any base station and the cloud.
    :param parameters: system-wide modelling constants.
    """

    def __init__(
        self,
        devices: Iterable[MobileDevice],
        stations: Iterable[BaseStation],
        attachment: Mapping[int, int],
        cloud: Cloud = Cloud(),
        bs_bs_link: BackhaulLink = DEFAULT_BS_BS_LINK,
        bs_cloud_link: BackhaulLink = DEFAULT_BS_CLOUD_LINK,
        parameters: SystemParameters = SystemParameters(),
    ) -> None:
        self._devices: Dict[int, MobileDevice] = {}
        for device in devices:
            if device.device_id in self._devices:
                raise ValueError(f"duplicate device id {device.device_id}")
            self._devices[device.device_id] = device

        self._stations: Dict[int, BaseStation] = {}
        for station in stations:
            if station.station_id in self._stations:
                raise ValueError(f"duplicate station id {station.station_id}")
            self._stations[station.station_id] = station

        if not self._devices:
            raise ValueError("a MEC system needs at least one mobile device")
        if not self._stations:
            raise ValueError("a MEC system needs at least one base station")

        self._attachment: Dict[int, int] = dict(attachment)
        missing = set(self._devices) - set(self._attachment)
        if missing:
            raise ValueError(f"devices without a base station: {sorted(missing)}")
        for device_id, station_id in self._attachment.items():
            if device_id not in self._devices:
                raise ValueError(f"attachment references unknown device {device_id}")
            if station_id not in self._stations:
                raise ValueError(
                    f"device {device_id} attached to unknown station {station_id}"
                )

        self.cloud = cloud
        self.bs_bs_link = bs_bs_link
        self.bs_cloud_link = bs_cloud_link
        self.parameters = parameters

        self._clusters: Dict[int, List[int]] = {sid: [] for sid in self._stations}
        for device_id in sorted(self._devices):
            self._clusters[self._attachment[device_id]].append(device_id)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def devices(self) -> Mapping[int, MobileDevice]:
        """All mobile devices, keyed by device id."""
        return self._devices

    @property
    def stations(self) -> Mapping[int, BaseStation]:
        """All base stations, keyed by station id."""
        return self._stations

    @property
    def num_devices(self) -> int:
        """n, the number of mobile devices (= users)."""
        return len(self._devices)

    @property
    def num_stations(self) -> int:
        """k, the number of base stations."""
        return len(self._stations)

    def device(self, device_id: int) -> MobileDevice:
        """The device with id ``device_id``."""
        return self._devices[device_id]

    def station(self, station_id: int) -> BaseStation:
        """The station with id ``station_id``."""
        return self._stations[station_id]

    def station_of(self, device_id: int) -> BaseStation:
        """The base station device ``device_id`` is attached to."""
        return self._stations[self._attachment[device_id]]

    def cluster_of(self, device_id: int) -> int:
        """The station id of the cluster containing ``device_id``."""
        return self._attachment[device_id]

    def cluster_members(self, station_id: int) -> Tuple[int, ...]:
        """Device ids attached to station ``station_id`` (sorted)."""
        return tuple(self._clusters[station_id])

    def cluster_sizes(self) -> Dict[int, int]:
        """Cluster size :math:`n_r` for every station r."""
        return {sid: len(members) for sid, members in self._clusters.items()}

    def same_cluster(self, device_a: int, device_b: int) -> bool:
        """Whether two devices share a base station (Section II-B cases)."""
        return self._attachment[device_a] == self._attachment[device_b]

    def without_devices(self, device_ids: Iterable[int]) -> "MECSystem":
        """A copy of the system with the given devices departed.

        Stations are retained even when their whole cluster leaves, so a
        departure can produce an *empty* cluster — exactly the state a
        quasi-static snapshot sees after users roam away mid-epoch.

        :param device_ids: devices to remove.
        :raises KeyError: if any id is not a device of this system.
        :raises ValueError: if removing them would leave no devices at all.
        """
        departed = set(device_ids)
        for device_id in departed:
            if device_id not in self._devices:
                raise KeyError(f"unknown device {device_id}")
        remaining = [
            device
            for device_id, device in self._devices.items()
            if device_id not in departed
        ]
        return MECSystem(
            devices=remaining,
            stations=self._stations.values(),
            attachment={
                device_id: station_id
                for device_id, station_id in self._attachment.items()
                if device_id not in departed
            },
            cloud=self.cloud,
            bs_bs_link=self.bs_bs_link,
            bs_cloud_link=self.bs_cloud_link,
            parameters=self.parameters,
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Export the topology as a networkx graph.

        Nodes are ``("device", id)``, ``("station", id)`` and ``"cloud"``;
        edges carry a ``kind`` attribute in {"radio", "backhaul", "wan"}.
        """
        graph = nx.Graph()
        graph.add_node("cloud", kind="cloud")
        for station_id in self._stations:
            graph.add_node(("station", station_id), kind="station")
            graph.add_edge(("station", station_id), "cloud", kind="wan")
        station_ids = sorted(self._stations)
        for index, first in enumerate(station_ids):
            for second in station_ids[index + 1 :]:
                graph.add_edge(("station", first), ("station", second), kind="backhaul")
        for device_id, station_id in self._attachment.items():
            graph.add_node(("device", device_id), kind="device")
            graph.add_edge(("device", device_id), ("station", station_id), kind="radio")
        return graph

    def __repr__(self) -> str:
        return (
            f"MECSystem(devices={self.num_devices}, stations={self.num_stations}, "
            f"clusters={self.cluster_sizes()})"
        )
