"""Result caching at base stations (the [29] line of related work).

Elbamby et al. [29] cut MEC latency by proactively caching the results of
popular computation tasks at the edge.  This extension adds that mechanism
to the data-shared model: repeated queries (a Zipf-popular stream, as in
content-caching practice) hit their base station's result cache and skip
computation and data collection entirely — only the result travels the last
hop.  The evaluator quantifies the energy/latency the cache saves over the
paper's cache-less pipeline.
"""

from repro.caching.cache import CacheStats, LFUCache, LRUCache, ResultCache
from repro.caching.evaluator import CachingReport, simulate_with_cache
from repro.caching.lp_cache import LPSolveCache, fingerprint_problem
from repro.caching.workload import QueryCatalog, zipf_query_stream

__all__ = [
    "CacheStats",
    "CachingReport",
    "LFUCache",
    "LPSolveCache",
    "LRUCache",
    "QueryCatalog",
    "ResultCache",
    "fingerprint_problem",
    "simulate_with_cache",
    "zipf_query_stream",
]
