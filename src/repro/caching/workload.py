"""Popular-query workloads: a catalog of distinct queries, Zipf repetition.

Caching only pays when queries repeat; content-delivery practice (and [29])
models popularity as Zipf.  A :class:`QueryCatalog` holds Q distinct query
*templates* (tasks without an owner); :func:`zipf_query_stream` draws a
stream of (query id, owner) pairs and materialises them as tasks raised by
random devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.task import Task
from repro.system.topology import MECSystem
from repro.workload.generator import _holistic_task
from repro.workload.profiles import WorkloadProfile

__all__ = ["QueryCatalog", "zipf_query_stream"]


@dataclass(frozen=True)
class QueryCatalog:
    """Q distinct query templates drawn from a workload profile.

    Two tasks instantiated from the same template share sizes, sources and
    operation — and therefore a cacheable result.

    :param templates: the template tasks (owners are placeholders; the
        stream re-homes each instance).
    """

    templates: Tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.templates:
            raise ValueError("catalog needs at least one query template")

    def __len__(self) -> int:
        return len(self.templates)

    @classmethod
    def generate(
        cls,
        system: MECSystem,
        profile: WorkloadProfile,
        num_queries: int,
        seed: int = 0,
    ) -> "QueryCatalog":
        """Draw ``num_queries`` templates from the profile's distributions."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        rng = np.random.default_rng(seed)
        device_ids = sorted(system.devices)
        templates = []
        for index in range(num_queries):
            owner = int(rng.choice(device_ids))
            templates.append(_holistic_task(system, profile, owner, index, rng))
        return cls(templates=tuple(templates))

    def instantiate(self, query_id: int, owner_device_id: int, index: int) -> Task:
        """A concrete task: the template's work, raised by ``owner``.

        The external source follows the template (the data lives where it
        lives); only the requester changes.
        """
        template = self.templates[query_id]
        source = template.external_source
        beta = template.external_bytes
        if source == owner_device_id:
            # The requester happens to hold the "external" data: it is
            # local for them.
            return Task(
                owner_device_id=owner_device_id, index=index,
                local_bytes=template.local_bytes + beta,
                external_bytes=0.0, external_source=None,
                resource_demand=template.resource_demand,
                deadline_s=template.deadline_s,
                operation=f"query-{query_id}",
            )
        return Task(
            owner_device_id=owner_device_id, index=index,
            local_bytes=template.local_bytes,
            external_bytes=beta, external_source=source,
            resource_demand=template.resource_demand,
            deadline_s=template.deadline_s,
            operation=f"query-{query_id}",
        )


def zipf_query_stream(
    system: MECSystem,
    catalog: QueryCatalog,
    length: int,
    exponent: float = 1.1,
    seed: int = 0,
) -> List[Tuple[int, Task]]:
    """A stream of (query id, task) pairs with Zipf-popular queries.

    :param system: the MEC system (owners are drawn from its devices).
    :param catalog: the query catalog.
    :param length: number of requests.
    :param exponent: Zipf skew (>1; higher = more repetition).
    :param seed: RNG seed.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    if exponent <= 1.0:
        raise ValueError("zipf exponent must exceed 1")
    rng = np.random.default_rng(seed)
    device_ids = sorted(system.devices)
    weights = 1.0 / np.arange(1, len(catalog) + 1) ** exponent
    weights /= weights.sum()
    stream: List[Tuple[int, Task]] = []
    for index in range(length):
        query_id = int(rng.choice(len(catalog), p=weights))
        owner = int(rng.choice(device_ids))
        stream.append((query_id, catalog.instantiate(query_id, owner, index)))
    return stream
