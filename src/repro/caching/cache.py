"""Byte-budgeted result caches: LRU and LFU eviction."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

__all__ = ["CacheStats", "LFUCache", "LRUCache", "ResultCache"]


@dataclass
class CacheStats:
    """Hit/miss counters of one cache.

    :param hits: lookups that found the key.
    :param misses: lookups that did not.
    :param evictions: entries removed to make room.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0 when never used)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Base class: a byte-budgeted key → result-size cache.

    Only result *sizes* are stored — the simulation never materialises
    payloads.  Subclasses choose the eviction victim.

    :param capacity_bytes: total byte budget.
    """

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0.0
        self.stats = CacheStats()
        self._sizes: "OrderedDict[Hashable, float]" = OrderedDict()
        self._frequency: Dict[Hashable, int] = {}

    def __contains__(self, key: Hashable) -> bool:
        return key in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def lookup(self, key: Hashable) -> Optional[float]:
        """Result size on hit (recording the access), None on miss."""
        if key in self._sizes:
            self.stats.hits += 1
            self._frequency[key] = self._frequency.get(key, 0) + 1
            self._touch(key)
            return self._sizes[key]
        self.stats.misses += 1
        return None

    def insert(self, key: Hashable, size_bytes: float) -> bool:
        """Cache a result; evicts until it fits.  Returns False if the
        entry is larger than the whole cache (never stored)."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if size_bytes > self.capacity_bytes:
            return False
        if key in self._sizes:
            self.used_bytes -= self._sizes.pop(key)
        while self.used_bytes + size_bytes > self.capacity_bytes and self._sizes:
            victim = self._victim()
            self.used_bytes -= self._sizes.pop(victim)
            self._frequency.pop(victim, None)
            self.stats.evictions += 1
        self._sizes[key] = size_bytes
        self._frequency.setdefault(key, 1)
        self.used_bytes += size_bytes
        return True

    def _touch(self, key: Hashable) -> None:
        """Recency bookkeeping hook (LRU moves the key to the back)."""

    def _victim(self) -> Hashable:
        """The key to evict next."""
        raise NotImplementedError


class LRUCache(ResultCache):
    """Evicts the least recently used entry."""

    def _touch(self, key: Hashable) -> None:
        self._sizes.move_to_end(key)

    def _victim(self) -> Hashable:
        return next(iter(self._sizes))


class LFUCache(ResultCache):
    """Evicts the least frequently used entry (ties: oldest)."""

    def _victim(self) -> Hashable:
        return min(self._sizes, key=lambda key: (self._frequency.get(key, 0),))
