"""Keyed cache of LP solve results.

Grid sweeps and repeated figure cells frequently rebuild *identical*
relaxations (same profile point, same seed, same algorithm).  Solving the
same LP twice is pure waste, so :func:`repro.lp.backends.solve` accepts an
:class:`LPSolveCache`: the problem's arrays are hashed into a fingerprint
and previously solved instances are returned without touching a solver.

The fingerprint covers every array that defines the problem (objective,
both constraint blocks, upper bounds) plus the backend name, hashed with
SHA-256 over the raw float64 buffers — two problems share a key only when
they are bit-identical, so a hit can simply return the stored
:class:`~repro.lp.result.LPResult` (results are immutable).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from repro.caching.cache import CacheStats
from repro.context import Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lp.problem import LinearProgram
    from repro.lp.result import LPResult
    from repro.lp.structured import GroupedBoundedLP

__all__ = [
    "LPSolveCache",
    "fingerprint_batch",
    "fingerprint_grouped",
    "fingerprint_problem",
]


def _update(digest: "hashlib._Hash", label: bytes, array: Optional[np.ndarray]) -> None:
    """Feed one (possibly absent) array into the digest, unambiguously.

    Sparse matrices are hashed over their canonical CSR structure (shape,
    indptr, indices, data) so two solves with the same sparse constraints
    share a key — and never collide with a dense matrix of equal values.
    """
    digest.update(label)
    if array is None:
        digest.update(b"<none>")
        return
    if sp.issparse(array):
        csr = sp.csr_array(array, dtype=float)
        digest.update(b"<csr>")
        digest.update(str(csr.shape).encode())
        digest.update(np.ascontiguousarray(csr.indptr).tobytes())
        digest.update(np.ascontiguousarray(csr.indices).tobytes())
        digest.update(np.ascontiguousarray(csr.data, dtype=float).tobytes())
        return
    arr = np.ascontiguousarray(array, dtype=float)
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())


def fingerprint_problem(problem: "LinearProgram", method: str) -> str:
    """A collision-resistant key for (problem, backend).

    Two calls produce the same key iff every defining array of the problem
    is bit-identical and the backend name matches.
    """
    digest = hashlib.sha256()
    digest.update(method.encode())
    _update(digest, b"c", problem.c)
    _update(digest, b"a_ub", problem.a_ub)
    _update(digest, b"b_ub", problem.b_ub)
    _update(digest, b"a_eq", problem.a_eq)
    _update(digest, b"b_eq", problem.b_eq)
    _update(digest, b"ub", problem.upper_bounds)
    return digest.hexdigest()


def fingerprint_grouped(lp: "GroupedBoundedLP", method: str) -> str:
    """The :func:`fingerprint_problem` analogue for the P2-shaped form.

    Covers the objective, the group partition, both coupling blocks and
    the bounds — everything :class:`~repro.lp.structured.GroupedBoundedLP`
    is defined by — so the structured IPM path can share the same cache as
    the generic dispatcher.
    """
    digest = hashlib.sha256()
    digest.update(method.encode())
    _update(digest, b"c", lp.c)
    _update(digest, b"gi", lp.group_index)
    _update(digest, b"gr", lp.group_rhs)
    _update(digest, b"ca", lp.coupling_a)
    _update(digest, b"cb", lp.coupling_b)
    _update(digest, b"ub", lp.upper)
    return digest.hexdigest()


def fingerprint_batch(keys: Sequence[str]) -> str:
    """One key for a whole block-diagonal batch of LP instances.

    Hashes the *sorted* per-block fingerprints, so two batches containing
    the same multiset of blocks share a key regardless of block order —
    block order cannot change any per-block result (blocks are independent
    by construction).
    """
    digest = hashlib.sha256()
    digest.update(b"<batch>")
    for key in sorted(keys):
        digest.update(key.encode())
    return digest.hexdigest()


class LPSolveCache:
    """LRU cache of LP results keyed by problem fingerprint.

    :param capacity: maximum number of stored results (> 0).
    :param telemetry: optional :class:`~repro.context.Telemetry` sink;
        every lookup is counted there as a hit or miss, so caches created
        by a :class:`~repro.context.RunContext` report into the same
        counters as the solves themselves.
    """

    def __init__(
        self, capacity: int = 128, telemetry: Optional[Telemetry] = None
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.stats = CacheStats()
        self.telemetry = telemetry
        # Per-block entries map fingerprint -> LPResult; whole-batch
        # entries (see lookup_batch) map a batch fingerprint -> a dict of
        # its per-block entries.  Both kinds share one LRU budget.
        self._entries: "OrderedDict[str, Union[LPResult, Dict[str, LPResult]]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> Optional["LPResult"]:
        """The cached result for ``key``, or ``None`` (counts hit/miss)."""
        result = self._entries.get(key)
        if self.telemetry is not None:
            self.telemetry.record_cache(result is not None)
        if result is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(key)
        return result

    def insert(self, key: str, result: "LPResult") -> None:
        """Store a result, evicting the least recently used past capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = result
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def lookup_batch(self, keys: Sequence[str]) -> Optional[List["LPResult"]]:
        """Whole-batch lookup: all blocks at once, or ``None``.

        The batch is keyed by :func:`fingerprint_batch` over the per-block
        ``keys``; a hit returns the stored results re-aligned to the input
        order (the batch entry stores a per-block-key mapping, so two
        batches with the same blocks in different order both hit).  Counted
        separately from per-block lookups via
        :meth:`~repro.context.Telemetry.record_batch_cache`; a miss here
        costs one dict probe, after which callers fall back to per-block
        :meth:`lookup` calls to salvage a subset.
        """
        batch_key = fingerprint_batch(keys)
        entry = self._entries.get(batch_key)
        hit = isinstance(entry, dict) and all(key in entry for key in keys)
        if self.telemetry is not None:
            self.telemetry.record_batch_cache(hit)
        if not hit:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(batch_key)
        assert isinstance(entry, dict)
        return [entry[key] for key in keys]

    def insert_batch(self, keys: Sequence[str], results: Sequence["LPResult"]) -> None:
        """Store a solved batch: the whole-batch entry plus each block.

        Per-block results are inserted individually too, so a later batch
        sharing only *some* blocks still gets per-block subset hits.
        """
        if len(keys) != len(results):
            raise ValueError("keys and results must have equal length")
        for key, result in zip(keys, results):
            self.insert(key, result)
        batch_key = fingerprint_batch(keys)
        if batch_key in self._entries:
            self._entries.move_to_end(batch_key)
        self._entries[batch_key] = dict(zip(keys, results))
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the stats survive)."""
        self._entries.clear()
