"""Pricing a query stream through per-station result caches.

Each base station keeps one cache.  For every request:

- **hit** at the requester's station: the result is already at the edge, so
  the only cost is the last-hop downlink (energy and time) — computation,
  data collection and WAN transfers are all skipped;
- **miss**: the task is priced and placed like any Section II task (its
  cheapest deadline-feasible subsystem), and the result is then inserted
  into the requester's station cache.

The report contrasts the cached run with the cache-less cost of the same
stream — the saving [29] is after.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.caching.cache import ResultCache
from repro.core.costs import task_costs
from repro.core.task import Task
from repro.system.topology import MECSystem

__all__ = ["CachingReport", "simulate_with_cache"]


@dataclass(frozen=True)
class CachingReport:
    """Outcome of a cached query-stream simulation.

    :param requests: stream length.
    :param hit_rate: cache hits per request, over all stations.
    :param cached_energy_j: total energy with caching.
    :param uncached_energy_j: total energy of the same stream without caches.
    :param cached_mean_latency_s: mean per-request latency with caching.
    :param uncached_mean_latency_s: mean latency without caches.
    :param per_station_hit_rate: hit rate per station id.
    """

    requests: int
    hit_rate: float
    cached_energy_j: float
    uncached_energy_j: float
    cached_mean_latency_s: float
    uncached_mean_latency_s: float
    per_station_hit_rate: Dict[int, float]

    @property
    def energy_saving_fraction(self) -> float:
        """1 − cached/uncached energy (0 when the cache never helps)."""
        if self.uncached_energy_j <= 0:
            return 0.0
        return 1.0 - self.cached_energy_j / self.uncached_energy_j


def _cheapest_feasible(system: MECSystem, task: Task) -> Tuple[float, float]:
    """(energy, latency) of the task's cheapest deadline-feasible level.

    Falls back to the overall cheapest level when nothing meets the
    deadline (the request is still served, just late — a cache miss must
    not silently drop work).
    """
    costs = task_costs(system, task)
    energies = costs.total_energy_j
    times = costs.total_time_s
    feasible = [l for l in range(3) if times[l] <= task.deadline_s]
    candidates = feasible if feasible else list(range(3))
    best = min(candidates, key=lambda l: energies[l])
    return float(energies[best]), float(times[best])


def simulate_with_cache(
    system: MECSystem,
    stream: Sequence[Tuple[int, Task]],
    cache_factory: Callable[[], ResultCache],
) -> CachingReport:
    """Run a (query id, task) stream through per-station result caches.

    :param system: the MEC system.
    :param stream: the requests, in arrival order.
    :param cache_factory: builds one fresh cache per base station.
    """
    if not stream:
        raise ValueError("stream must not be empty")
    caches: Dict[int, ResultCache] = {
        sid: cache_factory() for sid in system.stations
    }
    result_model = system.parameters.result_size

    cached_energy = 0.0
    uncached_energy = 0.0
    cached_latencies: List[float] = []
    uncached_latencies: List[float] = []

    for query_id, task in stream:
        station_id = system.cluster_of(task.owner_device_id)
        owner = system.device(task.owner_device_id)
        result_bytes = result_model.result_bytes(task.input_bytes)

        miss_energy, miss_latency = _cheapest_feasible(system, task)
        uncached_energy += miss_energy
        uncached_latencies.append(miss_latency)

        hit = caches[station_id].lookup(query_id)
        if hit is not None:
            cached_energy += owner.wireless.download_energy_j(hit)
            cached_latencies.append(owner.wireless.download_time_s(hit))
        else:
            cached_energy += miss_energy
            cached_latencies.append(miss_latency)
            caches[station_id].insert(query_id, result_bytes)

    total_hits = sum(cache.stats.hits for cache in caches.values())
    total_lookups = sum(cache.stats.lookups for cache in caches.values())
    return CachingReport(
        requests=len(stream),
        hit_rate=total_hits / max(total_lookups, 1),
        cached_energy_j=cached_energy,
        uncached_energy_j=uncached_energy,
        cached_mean_latency_s=float(np.mean(cached_latencies)),
        uncached_mean_latency_s=float(np.mean(uncached_latencies)),
        per_station_hit_rate={
            sid: cache.stats.hit_rate for sid, cache in caches.items()
        },
    )
