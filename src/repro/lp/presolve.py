"""LP presolve: cheap reductions applied before a solver sees the problem.

Production LP stacks shave work off the solver with presolve passes; the
ones that matter for this library's LPs are:

- **fixed variables** — bounds pinned to zero (e.g. the partial-offloading
  model pins deadline-infeasible branches) are substituted out,
- **singleton equality rows** — ``a·x_j = b`` fixes ``x_j = b/a``,
- **empty rows** — all-zero rows are dropped (or prove infeasibility).

Passes iterate to a fixpoint.  :func:`restore` maps a reduced solution back
to the original variable space, so ``solve(presolve(lp))`` is a drop-in for
``solve(lp)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
import scipy.sparse as sp

from repro.lp.problem import LinearProgram
from repro.obs.tracer import staged

__all__ = ["PresolveResult", "presolve", "restore"]

_TOL = 1e-10


def _col(a, idx: int) -> np.ndarray:
    """Column ``idx`` as a dense 1-d vector (sparse- and dense-safe)."""
    if sp.issparse(a):
        return a[:, [idx]].toarray().ravel()
    return a[:, idx]


def _row(a, idx: int) -> np.ndarray:
    """Row ``idx`` as a dense 1-d vector (sparse- and dense-safe)."""
    if sp.issparse(a):
        return a[[idx], :].toarray().ravel()
    return a[idx]


def _drop_col(a, idx: int):
    """``a`` without column ``idx``, preserving the representation."""
    if sp.issparse(a):
        keep = np.r_[0:idx, idx + 1 : a.shape[1]]
        return sp.csr_array(a[:, keep])
    return np.delete(a, idx, axis=1)


def _drop_row(a, idx: int):
    """``a`` without row ``idx``, preserving the representation."""
    if sp.issparse(a):
        keep = np.r_[0:idx, idx + 1 : a.shape[0]]
        return sp.csr_array(a[keep, :])
    return np.delete(a, idx, axis=0)


def _take_rows(a, rows):
    """Rows ``rows`` of ``a``, preserving the representation."""
    if sp.issparse(a):
        return sp.csr_array(a[rows, :])
    return a[rows]


@dataclass(frozen=True)
class PresolveResult:
    """Outcome of the presolve passes.

    :param lp: the reduced problem (None when presolve proved
        infeasibility, or solved the problem outright).
    :param kept: original indices of the surviving variables.
    :param fixed: original index → value for eliminated variables.
    :param infeasible: presolve proved the problem infeasible.
    :param message: diagnostic detail.
    """

    lp: Optional[LinearProgram]
    kept: np.ndarray
    fixed: Dict[int, float]
    infeasible: bool = False
    message: str = ""

    @property
    def num_eliminated(self) -> int:
        """Variables removed by presolve."""
        return len(self.fixed)

    @property
    def fully_solved(self) -> bool:
        """Whether presolve fixed every variable."""
        return not self.infeasible and self.kept.size == 0


def _within_bounds(value: float, ub: float) -> bool:
    return -_TOL <= value <= ub + _TOL


@staged("presolve")
def presolve(lp: LinearProgram) -> PresolveResult:
    """Run the reduction passes on a bounded-variable LP.

    :param lp: the problem to reduce.
    """
    n = lp.num_vars
    fixed: Dict[int, float] = {}
    kept = list(range(n))

    c = lp.c.copy()
    a_ub = None if lp.a_ub is None else lp.a_ub.copy()
    b_ub = None if lp.b_ub is None else lp.b_ub.copy()
    a_eq = None if lp.a_eq is None else lp.a_eq.copy()
    b_eq = None if lp.b_eq is None else lp.b_eq.copy()
    upper = lp.upper_bounds.copy()

    def fix_variable(local_idx: int, value: float) -> bool:
        """Substitute a variable; returns False on bound violation."""
        nonlocal c, a_ub, b_ub, a_eq, b_eq, upper
        if not _within_bounds(value, upper[local_idx]):
            return False
        original = kept.pop(local_idx)
        fixed[original] = max(value, 0.0)
        if a_ub is not None:
            b_ub -= _col(a_ub, local_idx) * value
            a_ub = _drop_col(a_ub, local_idx)
        if a_eq is not None:
            b_eq -= _col(a_eq, local_idx) * value
            a_eq = _drop_col(a_eq, local_idx)
        c = np.delete(c, local_idx)
        upper = np.delete(upper, local_idx)
        return True

    changed = True
    while changed:
        changed = False

        # Pass 1: variables pinned by their bounds.
        idx = 0
        while idx < len(kept):
            if upper[idx] <= _TOL:
                if not fix_variable(idx, 0.0):
                    return PresolveResult(
                        lp=None, kept=np.asarray(kept), fixed=fixed,
                        infeasible=True, message="bound-pinned variable infeasible",
                    )
                changed = True
            else:
                idx += 1

        # Pass 2: empty and singleton equality rows.
        if a_eq is not None:
            row = 0
            while row < a_eq.shape[0]:
                row_vals = _row(a_eq, row)
                nonzero = np.flatnonzero(np.abs(row_vals) > _TOL)
                if nonzero.size == 0:
                    if abs(b_eq[row]) > 1e-7:
                        return PresolveResult(
                            lp=None, kept=np.asarray(kept), fixed=fixed,
                            infeasible=True,
                            message=f"empty equality row with rhs {b_eq[row]:g}",
                        )
                    a_eq = _drop_row(a_eq, row)
                    b_eq = np.delete(b_eq, row)
                    changed = True
                elif nonzero.size == 1:
                    var = int(nonzero[0])
                    value = float(b_eq[row] / row_vals[var])
                    a_eq = _drop_row(a_eq, row)
                    b_eq = np.delete(b_eq, row)
                    if not fix_variable(var, value):
                        return PresolveResult(
                            lp=None, kept=np.asarray(kept), fixed=fixed,
                            infeasible=True,
                            message="singleton equality violates bounds",
                        )
                    changed = True
                else:
                    row += 1

        # Pass 3: empty inequality rows.
        if a_ub is not None:
            keep_rows = []
            for row in range(a_ub.shape[0]):
                if np.any(np.abs(_row(a_ub, row)) > _TOL):
                    keep_rows.append(row)
                elif b_ub[row] < -1e-7:
                    return PresolveResult(
                        lp=None, kept=np.asarray(kept), fixed=fixed,
                        infeasible=True,
                        message=f"empty inequality row with rhs {b_ub[row]:g}",
                    )
                else:
                    changed = True
            if len(keep_rows) < a_ub.shape[0]:
                a_ub = _take_rows(a_ub, keep_rows)
                b_ub = b_ub[keep_rows]

    if a_ub is not None and a_ub.shape[0] == 0:
        a_ub, b_ub = None, None
    if a_eq is not None and a_eq.shape[0] == 0:
        a_eq, b_eq = None, None

    if not kept:
        return PresolveResult(
            lp=None, kept=np.zeros(0, dtype=int), fixed=fixed,
            message="presolve fixed every variable",
        )
    reduced = LinearProgram(
        c=c, a_ub=a_ub, b_ub=b_ub, a_eq=a_eq, b_eq=b_eq, upper_bounds=upper
    )
    return PresolveResult(lp=reduced, kept=np.asarray(kept), fixed=fixed)


def restore(result: PresolveResult, x_reduced: Optional[np.ndarray]) -> np.ndarray:
    """Map a reduced-space solution back to the original variables.

    :param result: the presolve bookkeeping.
    :param x_reduced: solution of ``result.lp`` (may be None/empty when
        presolve fully solved the problem).
    :raises ValueError: on infeasible presolves or size mismatches.
    """
    if result.infeasible:
        raise ValueError("cannot restore an infeasible presolve")
    total = result.kept.size + len(result.fixed)
    x = np.zeros(total)
    for index, value in result.fixed.items():
        x[index] = value
    if result.kept.size:
        if x_reduced is None or len(x_reduced) != result.kept.size:
            raise ValueError(
                f"reduced solution must have length {result.kept.size}"
            )
        x[result.kept] = x_reduced
    return x
