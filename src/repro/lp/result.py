"""Solver result types shared by all LP backends."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["LPResult", "LPStatus"]


class LPStatus(enum.Enum):
    """Outcome of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NUMERICAL_ERROR = "numerical_error"

    @property
    def ok(self) -> bool:
        """Whether a usable optimal solution was produced."""
        return self is LPStatus.OPTIMAL


@dataclass(frozen=True)
class LPResult:
    """Solution of a linear program.

    :param status: solve outcome; ``x`` and ``objective`` are only
        meaningful when ``status.ok``.
    :param x: primal solution in the *original* variable space.
    :param objective: objective value :math:`c^T x`.
    :param iterations: solver iterations performed.
    :param backend: name of the backend that produced the result.
    :param message: free-form diagnostic detail.
    :param warm_start: solver state (e.g. a
        :class:`~repro.lp.warmstart.SimplexBasis` or
        :class:`~repro.lp.warmstart.IPMIterate`) usable to warm-start the
        next solve of a similar problem; ``None`` when the backend does
        not produce one.
    """

    status: LPStatus
    x: Optional[np.ndarray]
    objective: float
    iterations: int
    backend: str
    message: str = ""
    warm_start: Optional[object] = None

    def require_ok(self) -> np.ndarray:
        """Return ``x``, raising if the solve did not reach optimality."""
        if not self.status.ok or self.x is None:
            raise RuntimeError(
                f"LP solve failed: status={self.status.value} "
                f"backend={self.backend} message={self.message!r}"
            )
        return self.x
