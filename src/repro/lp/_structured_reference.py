"""Seed implementation of the structured IPM, kept as a reference path.

This is the original (pre-optimisation) body of
:func:`repro.lp.structured.solve_structured`, preserved verbatim so that

- the differential tests can assert the optimised solver is bit-identical
  to it, and
- ``perf_config(reference=True)`` (see :mod:`repro.perf`) can route solves
  through the original code, which is what ``scripts/bench_perf.py`` times
  the optimised pipeline against.

Do not "improve" this module: its value is being frozen.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.lp.result import LPResult, LPStatus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.lp.structured import GroupedBoundedLP, StructuredIPMOptions

__all__ = ["solve_structured_reference"]

_BACKEND_NAME = "structured-ipm"


def solve_structured_reference(
    lp: "GroupedBoundedLP", options: "StructuredIPMOptions"
) -> LPResult:
    """Solve a :class:`GroupedBoundedLP` with the seed Mehrotra IPM."""
    n = lp.num_vars
    k = lp.num_coupling
    m_g = lp.num_groups
    c = lp.c
    r_mat = lp.coupling_a
    bounded = np.isfinite(lp.upper)
    u = lp.upper

    # ---- starting point -------------------------------------------------
    x = np.where(bounded, np.minimum(u * 0.5, 1.0), 1.0)
    x = np.maximum(x, 1e-3)
    s = np.ones(k)
    w = np.where(bounded, u - x, 1.0)  # only meaningful where bounded
    w = np.maximum(w, 1e-3)
    y_g = np.zeros(m_g)
    y_r = np.zeros(k)
    z = np.ones(n)          # dual of x >= 0
    z_s = np.ones(k)        # dual of s >= 0
    v = np.where(bounded, 1.0, 0.0)  # dual of x <= u

    norm_b = 1.0 + float(np.linalg.norm(lp.group_rhs)) + float(np.linalg.norm(lp.coupling_b))
    norm_c = 1.0 + float(np.linalg.norm(c))
    num_comp = n + k + int(bounded.sum())

    def complementarity() -> float:
        return (
            float(x @ z) + float(s @ z_s) + float(w[bounded] @ v[bounded])
        ) / num_comp

    for iteration in range(1, options.max_iterations + 1):
        # Residuals.
        r_groups = lp.group_sums(x) - lp.group_rhs
        r_coupling = (r_mat @ x + s - lp.coupling_b) if k else np.zeros(0)
        r_upper = np.where(bounded, x + w - u, 0.0)
        r_dual_x = (
            (r_mat.T @ y_r if k else 0.0) + y_g[lp.group_index] + z - v - c
        )
        r_dual_s = y_r + z_s if k else np.zeros(0)

        mu = complementarity()
        primal_err = (
            float(np.linalg.norm(r_groups))
            + float(np.linalg.norm(r_coupling))
            + float(np.linalg.norm(r_upper))
        ) / norm_b
        dual_err = (
            float(np.linalg.norm(r_dual_x)) + float(np.linalg.norm(r_dual_s))
        ) / norm_c
        if max(primal_err, dual_err, mu) < options.tolerance:
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=x.copy(),
                objective=lp.objective(x),
                iterations=iteration - 1,
                backend=_BACKEND_NAME,
            )

        # Scaling diagonals (clip to keep the Schur system finite).
        with np.errstate(over="ignore", divide="ignore"):
            d_x = z / np.maximum(x, 1e-300) + np.where(
                bounded, v / np.maximum(w, 1e-300), 0.0
            )
            d_s = z_s / np.maximum(s, 1e-300) if k else np.zeros(0)
        theta_x = 1.0 / np.clip(d_x, 1e-12, 1e12)
        theta_s = 1.0 / np.clip(d_s, 1e-12, 1e12) if k else np.zeros(0)

        # Normal-equation blocks.
        diag_g = np.maximum(lp.group_sums(theta_x), 1e-300)
        if k:
            rt = r_mat * theta_x  # (K, n) scaled rows
            u_block = np.empty((m_g, k))
            for col in range(k):
                u_block[:, col] = lp.group_sums(rt[col])
            s_block = rt @ r_mat.T + np.diag(theta_s)
        else:
            u_block = np.zeros((m_g, 0))
            s_block = np.zeros((0, 0))

        def solve_normal(rhs_g: np.ndarray, rhs_r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            """Solve [[D_g, U], [Uᵀ, S]] (dy_g, dy_r) = (rhs_g, rhs_r)."""
            if k == 0:
                return rhs_g / diag_g, np.zeros(0)
            dg_inv_rhs = rhs_g / diag_g
            schur = s_block - u_block.T @ (u_block / diag_g[:, None])
            schur[np.diag_indices_from(schur)] += 1e-12 * (1.0 + np.trace(schur) / max(k, 1))
            dy_r = np.linalg.solve(schur, rhs_r - u_block.T @ dg_inv_rhs)
            dy_g = (rhs_g - u_block @ dy_r) / diag_g
            return dy_g, dy_r

        def newton(rxz: np.ndarray, rwv: np.ndarray, rsz: np.ndarray):
            """One KKT solve for given complementarity residuals."""
            # Collapse to the normal equations in (dy_g, dy_r).
            g_x = r_dual_x - rxz / np.maximum(x, 1e-300)
            if np.any(bounded):
                g_x = g_x + np.where(
                    bounded,
                    rwv / np.maximum(w, 1e-300)
                    - (v / np.maximum(w, 1e-300)) * r_upper,
                    0.0,
                )
            # dx = theta_x (A'dy + g_x) form:
            rhs_g = -r_groups - lp.group_sums(theta_x * g_x)
            if k:
                g_s = r_dual_s - rsz / np.maximum(s, 1e-300)
                rhs_r = -r_coupling - rt @ g_x - theta_s * g_s
            else:
                rhs_r = np.zeros(0)
            dy_g, dy_r = solve_normal(rhs_g, rhs_r)
            at_dy = dy_g[lp.group_index] + (r_mat.T @ dy_r if k else 0.0)
            dx = theta_x * (at_dy + g_x)
            dz = -(rxz + z * dx) / np.maximum(x, 1e-300)
            dw = np.where(bounded, -r_upper - dx, 0.0)
            dv = np.where(
                bounded, -(rwv + v * dw) / np.maximum(w, 1e-300), 0.0
            )
            if k:
                ds = theta_s * (dy_r + g_s)
                dz_s = -(rsz + z_s * ds) / np.maximum(s, 1e-300)
            else:
                ds = np.zeros(0)
                dz_s = np.zeros(0)
            return dx, ds, dw, dy_g, dy_r, dz, dz_s, dv

        def max_step(values: np.ndarray, deltas: np.ndarray, mask=None) -> float:
            if mask is not None:
                values = values[mask]
                deltas = deltas[mask]
            negative = deltas < 0
            if not np.any(negative):
                return 1.0
            return float(min(1.0, np.min(-values[negative] / deltas[negative])))

        # Predictor.
        rxz_aff = x * z
        rwv_aff = np.where(bounded, w * v, 0.0)
        rsz_aff = s * z_s if k else np.zeros(0)
        aff = newton(rxz_aff, rwv_aff, rsz_aff)
        dx_a, ds_a, dw_a, _, _, dz_a, dzs_a, dv_a = aff
        alpha_p = min(
            max_step(x, dx_a),
            max_step(s, ds_a) if k else 1.0,
            max_step(w, dw_a, bounded),
        )
        alpha_d = min(
            max_step(z, dz_a),
            max_step(z_s, dzs_a) if k else 1.0,
            max_step(v, dv_a, bounded),
        )
        mu_aff = (
            float((x + alpha_p * dx_a) @ (z + alpha_d * dz_a))
            + (float((s + alpha_p * ds_a) @ (z_s + alpha_d * dzs_a)) if k else 0.0)
            + float(
                (w[bounded] + alpha_p * dw_a[bounded])
                @ (v[bounded] + alpha_d * dv_a[bounded])
            )
        ) / num_comp
        sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

        # Corrector.
        rxz = x * z + dx_a * dz_a - sigma * mu
        rwv = np.where(bounded, w * v + dw_a * dv_a - sigma * mu, 0.0)
        rsz = (s * z_s + ds_a * dzs_a - sigma * mu) if k else np.zeros(0)
        dx, ds, dw, dy_g, dy_r, dz, dz_s, dv = newton(rxz, rwv, rsz)

        alpha_p = options.step_fraction * min(
            max_step(x, dx),
            max_step(s, ds) if k else 1.0,
            max_step(w, dw, bounded),
        )
        alpha_d = options.step_fraction * min(
            max_step(z, dz),
            max_step(z_s, dz_s) if k else 1.0,
            max_step(v, dv, bounded),
        )
        x = x + alpha_p * dx
        s = s + alpha_p * ds
        w = np.where(bounded, w + alpha_p * dw, w)
        y_g = y_g + alpha_d * dy_g
        y_r = y_r + alpha_d * dy_r
        z = z + alpha_d * dz
        z_s = z_s + alpha_d * dz_s
        v = np.where(bounded, v + alpha_d * dv, v)

        if np.any(x <= 0) or np.any(z <= 0) or (k and (np.any(s <= 0) or np.any(z_s <= 0))):
            return LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="iterate left the positive orthant",
            )

    return LPResult(
        status=LPStatus.ITERATION_LIMIT,
        x=None,
        objective=float("nan"),
        iterations=options.max_iterations,
        backend=_BACKEND_NAME,
        message="no convergence within the iteration cap",
    )
