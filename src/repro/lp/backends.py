"""LP backend dispatcher.

``"interior-point"`` (the default, mirroring the paper's Step 1) and
``"simplex"`` are our from-scratch solvers; ``"scipy"`` wraps
``scipy.optimize.linprog`` and exists so the test suite can cross-validate
the from-scratch implementations against an independent solver.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple

from repro.context import RunContext, current_context
from repro.lp.interior_point import IPMOptions, solve_interior_point
from repro.lp.problem import LinearProgram
from repro.lp.result import LPResult, LPStatus
from repro.lp.simplex import SimplexOptions, solve_simplex
from repro.lp.warmstart import IPMIterate, SimplexBasis
from repro.obs.tracer import span

__all__ = ["FALLBACK_LADDER", "available_backends", "solve", "solve_with_fallback"]

#: Default degradation order for :func:`solve_with_fallback`: our IPM
#: first, the from-scratch simplex as the numerically independent retry,
#: scipy/HiGHS as the external last resort.
FALLBACK_LADDER: Tuple[str, ...] = ("interior-point", "simplex", "scipy")


def _solve_scipy(problem: LinearProgram) -> LPResult:
    """Cross-check backend built on scipy's HiGHS interface."""
    from scipy.optimize import linprog

    bounds = [(0.0, ub if ub != float("inf") else None) for ub in problem.upper_bounds]
    result = linprog(
        c=problem.c,
        A_ub=problem.a_ub,
        b_ub=problem.b_ub,
        A_eq=problem.a_eq,
        b_eq=problem.b_eq,
        bounds=bounds,
        method="highs",
    )
    status_map = {
        0: LPStatus.OPTIMAL,
        1: LPStatus.ITERATION_LIMIT,
        2: LPStatus.INFEASIBLE,
        3: LPStatus.UNBOUNDED,
        4: LPStatus.NUMERICAL_ERROR,
    }
    status = status_map.get(result.status, LPStatus.NUMERICAL_ERROR)
    return LPResult(
        status=status,
        x=result.x if status.ok else None,
        objective=float(result.fun) if status.ok else float("nan"),
        iterations=int(getattr(result, "nit", 0) or 0),
        backend="scipy",
        message=str(result.message),
    )


def _solve_interior_point(
    problem: LinearProgram, warm_start: Optional[object]
) -> LPResult:
    warm = warm_start if isinstance(warm_start, IPMIterate) else None
    return solve_interior_point(problem, IPMOptions(), warm_start=warm)


def _solve_simplex(
    problem: LinearProgram, warm_start: Optional[object]
) -> LPResult:
    warm = warm_start if isinstance(warm_start, SimplexBasis) else None
    return solve_simplex(problem, SimplexOptions(), warm_start=warm)


_BACKENDS: Dict[str, Callable[[LinearProgram, Optional[object]], LPResult]] = {
    "interior-point": _solve_interior_point,
    "simplex": _solve_simplex,
    "scipy": lambda p, warm_start: _solve_scipy(p),
}


def available_backends() -> Tuple[str, ...]:
    """Names accepted by :func:`solve`."""
    return tuple(_BACKENDS)


def solve(
    problem: LinearProgram,
    method: str = "interior-point",
    warm_start: Optional[object] = None,
    cache: Optional["LPSolveCache"] = None,
    context: Optional[RunContext] = None,
) -> LPResult:
    """Solve ``problem`` with the named backend.

    :param problem: the LP to solve.
    :param method: one of :func:`available_backends`.
    :param warm_start: optional solver state from a previous
        :class:`LPResult` (its ``warm_start`` attribute); silently ignored
        by backends it does not fit (e.g. a simplex basis handed to the
        interior-point method), so callers can thread the previous sweep
        point's result through without dispatching on the backend.  Ignored
        entirely when the context disables warm starts.
    :param cache: optional :class:`~repro.caching.lp_cache.LPSolveCache`;
        bit-identical (problem, method) pairs return the stored result
        without solving.  Defaults to the context's own solve cache (off
        unless ``lp_cache_capacity`` is set).
    :param context: run configuration and telemetry sink; defaults to the
        active :func:`~repro.context.current_context`.  Every call records
        one solve (wall time, iterations, cache hit, warm-start reuse).
    :raises ValueError: on an unknown backend name.
    """
    try:
        backend = _BACKENDS[method]
    except KeyError:
        raise ValueError(
            f"unknown LP backend {method!r}; choose from {available_backends()}"
        ) from None

    ctx = context if context is not None else current_context()
    if not ctx.lp_warm_start:
        warm_start = None
    if cache is None and not ctx.reference:
        # Reference mode solves uncached (seed-era behaviour; explicit
        # ``cache=`` arguments still win for differential tests).
        cache = ctx.lp_cache

    with span("solve", context=ctx, backend=method):
        start = time.perf_counter()
        key = None
        if cache is not None:
            from repro.caching.lp_cache import fingerprint_problem

            key = fingerprint_problem(problem, method)
            hit = cache.lookup(key)
            if hit is not None:
                ctx.telemetry.record_solve(
                    wall_time_s=time.perf_counter() - start,
                    iterations=0,
                    cache_hit=True,
                )
                return hit

        result = backend(problem, warm_start)
        if cache is not None and key is not None:
            cache.insert(key, result)
        ctx.telemetry.record_solve(
            wall_time_s=time.perf_counter() - start,
            iterations=result.iterations,
            warm_start=warm_start is not None,
        )
        return result


def solve_with_fallback(
    problem: LinearProgram,
    methods: Optional[Tuple[str, ...]] = None,
    warm_start: Optional[object] = None,
    context: Optional[RunContext] = None,
) -> LPResult:
    """Solve ``problem``, degrading through a ladder of backends.

    Each method is tried in order until one returns an ``OPTIMAL`` result;
    a success on any rung below the first is counted in the context's
    telemetry (``lp.fallback.<backend>``, the ``--stats`` fallback line).
    When every rung fails the *last* result is returned — status intact,
    never raised — so callers decide whether a non-optimal status is fatal
    for them.

    :param methods: the ladder, first entry primary; defaults to
        :data:`FALLBACK_LADDER`.
    :param warm_start: threaded through to each rung (backends ignore
        states that do not fit them).
    :param context: run configuration and telemetry sink; defaults to the
        active :func:`~repro.context.current_context`.
    :raises ValueError: when ``methods`` is empty or names an unknown
        backend.
    """
    ladder = FALLBACK_LADDER if methods is None else methods
    if not ladder:
        raise ValueError("solve_with_fallback needs at least one backend")
    ctx = context if context is not None else current_context()
    result: Optional[LPResult] = None
    for rung, method in enumerate(ladder):
        result = solve(problem, method, warm_start=warm_start, context=ctx)
        if result.status.ok:
            if rung > 0:
                ctx.telemetry.record_fallback(method)
            return result
    assert result is not None
    return result
