"""Warm-start payloads carried between related LP solves.

Sweep points in the figure pipeline differ only in a few profile fields,
so consecutive relaxations are near-identical.  A solver that starts from
the previous point's solution state typically needs far fewer iterations:

- the **simplex** re-uses the previous optimal *basis* — phase 1 is
  skipped entirely when the old basis is still primal feasible,
- the **interior-point** method starts from the previous *iterate*
  (clipped back into the strictly positive orthant).

Both payloads are advisory: a solver validates its warm start and falls
back to the cold path when the shapes do not match or the basis has gone
stale, so passing the "wrong" warm start can cost time but never
correctness.  Solvers return the payload for the *next* solve in
:attr:`repro.lp.result.LPResult.warm_start`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["IPMIterate", "SimplexBasis"]


@dataclass(frozen=True)
class SimplexBasis:
    """An optimal simplex basis, as standard-form column indices.

    :param columns: one basic column per constraint row, in row order.
    """

    columns: Tuple[int, ...]


@dataclass(frozen=True)
class IPMIterate:
    """A converged primal–dual point ``(x, y, s)`` in standard form.

    :param x: primal iterate (strictly positive at convergence).
    :param y: dual iterate for the equality constraints.
    :param s: dual slack iterate.
    """

    x: np.ndarray
    y: np.ndarray
    s: np.ndarray
