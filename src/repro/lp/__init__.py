"""Linear-programming substrate, implemented from scratch.

LP-HTA's Step 1 solves the relaxed problem P2 with an interior-point method
(the paper cites Karmarkar [17]).  This package provides:

- :class:`LinearProgram` — a bounded-variable LP and its standard form,
- :func:`solve_interior_point` — a Mehrotra predictor–corrector primal–dual
  interior-point solver (the modern production descendant of [17]),
- :func:`solve_simplex` — a dense two-phase simplex, used for cross-checks
  and for small exact subproblems,
- :func:`solve` — a backend dispatcher (including an optional scipy backend
  used only to validate our solvers in the test suite).
"""

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.interior_point import solve_interior_point
from repro.lp.simplex import solve_simplex
from repro.lp.structured import GroupedBoundedLP, solve_structured
from repro.lp.presolve import PresolveResult, presolve, restore
from repro.lp.backends import available_backends, solve
from repro.lp.warmstart import IPMIterate, SimplexBasis

__all__ = [
    "GroupedBoundedLP",
    "IPMIterate",
    "LinearProgram",
    "LPResult",
    "LPStatus",
    "PresolveResult",
    "SimplexBasis",
    "StandardFormLP",
    "available_backends",
    "presolve",
    "restore",
    "solve",
    "solve_interior_point",
    "solve_simplex",
    "solve_structured",
]
