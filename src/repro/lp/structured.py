"""Structured interior-point solver for P2-shaped linear programs.

The relaxation P2 (Section III-A) has a very particular shape:

.. math::

   \\min c^T x \\quad \\text{s.t.} \\quad
   \\sum_{i \\in g} x_i = b_g \\; \\forall g, \\quad
   R x \\le r, \\quad 0 \\le x \\le u,

where the groups *g* partition the variables (one group per task: C4) and
the coupling block *R* has only a few rows (one per device plus one for the
base station: C2/C3).  A generic dense solver pays O((nm)³) per iteration;
here the normal-equations matrix :math:`A \\Theta A^T` is block
``[[diagonal, U], [Uᵀ, small]]``, so each Newton step costs
O(n·K + K³) with K = #coupling rows — effectively linear in the number of
tasks.  This is what lets the figure benches sweep to 900 tasks.

The algorithm is the same Mehrotra predictor–corrector as
:mod:`repro.lp.interior_point`, extended with native variable upper bounds
(no slack blow-up) following the standard bounded-variable derivation
(Wright, *Primal-Dual Interior-Point Methods*, ch. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.lp._structured_reference import solve_structured_reference
from repro.lp.result import LPResult, LPStatus

__all__ = [
    "GroupedBoundedLP",
    "StructuredIPMOptions",
    "solve_structured",
    "solve_structured_batch",
]

_BACKEND_NAME = "structured-ipm"


@dataclass(frozen=True)
class StructuredIPMOptions:
    """Tunables for the structured solver.

    :param tolerance: relative residual / complementarity target.  The
        default stops at 1e-8: the scaling-matrix clipping puts the
        achievable floor near 1e-9, where the last digits cost dozens of
        stalled iterations for nothing the rounding step could ever see.
    :param max_iterations: iteration cap.
    :param step_fraction: damping of the step to the boundary.
    """

    tolerance: float = 1e-8
    max_iterations: int = 200
    step_fraction: float = 0.9995


class GroupedBoundedLP:
    """A P2-shaped LP: partitioned equality groups + few coupling rows.

    :param c: objective, length n.
    :param group_index: for each variable, the index of its equality group
        (every variable belongs to exactly one group).
    :param group_rhs: right-hand side :math:`b_g` per group.
    :param coupling_a: coupling inequality matrix, shape (K, n); may be
        empty (K = 0).
    :param coupling_b: coupling right-hand sides, length K.
    :param upper: per-variable upper bounds (np.inf allowed).
    """

    def __init__(
        self,
        c: np.ndarray,
        group_index: np.ndarray,
        group_rhs: np.ndarray,
        coupling_a: Optional[np.ndarray] = None,
        coupling_b: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> None:
        self.c = np.asarray(c, dtype=float)
        n = self.c.shape[0]
        self.group_index = np.asarray(group_index, dtype=int)
        if self.group_index.shape != (n,):
            raise ValueError("group_index must map every variable")
        self.group_rhs = np.asarray(group_rhs, dtype=float)
        num_groups = self.group_rhs.shape[0]
        if num_groups == 0:
            raise ValueError("need at least one equality group")
        if self.group_index.min(initial=0) < 0 or (
            n > 0 and self.group_index.max() >= num_groups
        ):
            raise ValueError("group_index out of range")

        if coupling_a is None:
            coupling_a = np.zeros((0, n))
            coupling_b = np.zeros(0)
        self.coupling_a = np.asarray(coupling_a, dtype=float)
        self.coupling_b = np.asarray(coupling_b, dtype=float)
        if self.coupling_a.shape[1] != n:
            raise ValueError(f"coupling_a must have {n} columns")
        if self.coupling_b.shape != (self.coupling_a.shape[0],):
            raise ValueError("coupling_b length must match coupling_a rows")

        self.upper = (
            np.full(n, np.inf) if upper is None else np.asarray(upper, dtype=float)
        )
        if self.upper.shape != (n,):
            raise ValueError(f"upper must have length {n}")
        if np.any(self.upper <= 0):
            raise ValueError("upper bounds must be positive (use np.inf for none)")

    @property
    def num_vars(self) -> int:
        """n, the number of decision variables."""
        return self.c.shape[0]

    @property
    def num_groups(self) -> int:
        """Number of equality groups."""
        return self.group_rhs.shape[0]

    @property
    def num_coupling(self) -> int:
        """K, the number of coupling inequality rows."""
        return self.coupling_a.shape[0]

    def group_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-group sums of a per-variable vector (G·values)."""
        return np.bincount(self.group_index, weights=values, minlength=self.num_groups)

    def objective(self, x: np.ndarray) -> float:
        """Evaluate :math:`c^T x`."""
        return float(self.c @ x)

    def residuals(self, x: np.ndarray) -> dict:
        """Max violation per constraint family for a candidate ``x``."""
        out = {
            "lower": float(np.max(np.maximum(-x, 0.0), initial=0.0)),
            "upper": float(np.max(np.maximum(x - self.upper, 0.0), initial=0.0)),
            "groups": float(
                np.max(np.abs(self.group_sums(x) - self.group_rhs), initial=0.0)
            ),
        }
        if self.num_coupling:
            out["coupling"] = float(
                np.max(
                    np.maximum(self.coupling_a @ x - self.coupling_b, 0.0), initial=0.0
                )
            )
        return out

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every constraint within ``tol``."""
        return all(v <= tol for v in self.residuals(x).values())


def solve_structured(
    lp: GroupedBoundedLP, options: StructuredIPMOptions = StructuredIPMOptions()
) -> LPResult:
    """Solve a :class:`GroupedBoundedLP` with the structured Mehrotra IPM.

    The combined variable vector is (x, s) with s the coupling slacks; the
    equality system is ``[[G, 0], [R, I]] (x, s) = (b_g, r)``.  The normal
    equations are solved by eliminating the diagonal group block (Schur
    complement on the K×K coupling block).

    :param lp: the structured LP.
    :param options: solver tunables.
    """
    if perf.reference_mode():
        # Differential-testing / benchmarking hook: run the seed solver.
        return solve_structured_reference(lp, options)
    n = lp.num_vars
    k = lp.num_coupling
    m_g = lp.num_groups
    c = lp.c
    r_mat = lp.coupling_a
    bounded = np.isfinite(lp.upper)
    any_bounded = bool(np.any(bounded))
    all_bounded = bool(np.all(bounded))
    u = lp.upper

    # P2 instances built from real workloads bound every variable (the A1
    # deadline caps), in which case masking by ``bounded`` is the identity:
    # ``np.where(bounded, a, fill) == a`` and ``a[bounded] == a`` exactly.
    def where_bounded(values: np.ndarray, fill) -> np.ndarray:
        return values if all_bounded else np.where(bounded, values, fill)

    def of_bounded(values: np.ndarray) -> np.ndarray:
        return values if all_bounded else values[bounded]
    # Flattened bucket indices batching the K per-row group_sums of the
    # U-block into one bincount (bit-identical: bincount accumulates each
    # bucket in element order, unchanged by the offset flattening).
    u_block_offsets = (
        (np.arange(k)[:, None] * m_g + lp.group_index[None, :]).ravel()
        if k
        else None
    )
    # Diagonal index of the K×K Schur complement, shared by every solve.
    schur_diag = np.diag_indices(k) if k else None

    # ---- starting point -------------------------------------------------
    x = np.where(bounded, np.minimum(u * 0.5, 1.0), 1.0)
    x = np.maximum(x, 1e-3)
    s = np.ones(k)
    w = where_bounded(u - x, 1.0)  # only meaningful where bounded
    w = np.maximum(w, 1e-3)
    y_g = np.zeros(m_g)
    y_r = np.zeros(k)
    z = np.ones(n)          # dual of x >= 0
    z_s = np.ones(k)        # dual of s >= 0
    v = np.where(bounded, 1.0, 0.0)  # dual of x <= u

    norm_b = 1.0 + float(np.linalg.norm(lp.group_rhs)) + float(np.linalg.norm(lp.coupling_b))
    norm_c = 1.0 + float(np.linalg.norm(c))
    num_comp = n + k + int(bounded.sum())

    def complementarity() -> float:
        return (
            float(x @ z) + float(s @ z_s) + float(of_bounded(w) @ of_bounded(v))
        ) / num_comp

    # Loop-invariant lookups, bound once (the loop body runs thousands of
    # times on very small arrays, where attribute access is measurable).
    group_sums = lp.group_sums
    group_rhs = lp.group_rhs
    group_index = lp.group_index
    coupling_b = lp.coupling_b
    tolerance = options.tolerance
    step_fraction = options.step_fraction

    # One errstate for the whole solve: the scaling divisions may
    # overflow/divide harmlessly (they are clipped right after), and
    # toggling the FP-error state every iteration is measurable on
    # small instances.  Settings only silence warnings; no numerics
    # change.
    with np.errstate(over="ignore", divide="ignore"):
        for iteration in range(1, options.max_iterations + 1):
            # Residuals.
            r_groups = group_sums(x) - group_rhs
            r_coupling = (r_mat @ x + s - coupling_b) if k else np.zeros(0)
            r_upper = where_bounded(x + w - u, 0.0)
            r_dual_x = (
                (r_mat.T @ y_r if k else 0.0) + y_g[group_index] + z - v - c
            )
            r_dual_s = y_r + z_s if k else np.zeros(0)

            mu = complementarity()
            # sqrt(v @ v) is np.linalg.norm for real 1-D vectors, minus the
            # dispatch overhead (same BLAS dot, same rounding).
            primal_err = (
                math.sqrt(float(r_groups @ r_groups))
                + math.sqrt(float(r_coupling @ r_coupling))
                + math.sqrt(float(r_upper @ r_upper))
            ) / norm_b
            dual_err = (
                math.sqrt(float(r_dual_x @ r_dual_x))
                + math.sqrt(float(r_dual_s @ r_dual_s))
            ) / norm_c
            if max(primal_err, dual_err, mu) < tolerance:
                return LPResult(
                    status=LPStatus.OPTIMAL,
                    x=x.copy(),
                    objective=lp.objective(x),
                    iterations=iteration - 1,
                    backend=_BACKEND_NAME,
                )

            # Safe denominators, shared by the scaling matrix and both Newton
            # solves this iteration (the iterate is fixed until the update).
            x_safe = np.maximum(x, 1e-300)
            w_safe = np.maximum(w, 1e-300)
            s_safe = np.maximum(s, 1e-300) if k else np.zeros(0)

            # Scaling diagonals (clip to keep the Schur system finite).
            v_over_w = v / w_safe
            d_x = z / x_safe + where_bounded(v_over_w, 0.0)
            d_s = z_s / s_safe if k else np.zeros(0)
            theta_x = 1.0 / np.clip(d_x, 1e-12, 1e12)
            theta_s = 1.0 / np.clip(d_s, 1e-12, 1e12) if k else np.zeros(0)

            # Normal-equation blocks.  Everything here is fixed for the two
            # Newton solves of this iteration, so build it (including the Schur
            # complement and the negated residuals) exactly once.
            diag_g = np.maximum(group_sums(theta_x), 1e-300)
            if k:
                rt = r_mat * theta_x  # (K, n) scaled rows
                u_block = (
                    np.bincount(
                        u_block_offsets, weights=rt.ravel(), minlength=m_g * k
                    )
                    .reshape(k, m_g)
                    .T
                )
                # rt @ r_mat.T + diag(theta_s) minus the Schur correction,
                # accumulated in place (adding diag(theta_s) as a full matrix
                # only normalised off-diagonal -0.0 to +0.0, which compares
                # equal everywhere downstream).
                schur = rt @ r_mat.T
                schur[schur_diag] += theta_s
                schur -= u_block.T @ (u_block / diag_g[:, None])
                schur[schur_diag] += 1e-12 * (1.0 + schur.trace() / max(k, 1))
            else:
                u_block = np.zeros((m_g, 0))
            neg_r_groups = -r_groups
            neg_r_coupling = -r_coupling
            vw_r_upper = v_over_w * r_upper if any_bounded else None

            def solve_normal(rhs_g: np.ndarray, rhs_r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
                """Solve [[D_g, U], [Uᵀ, S]] (dy_g, dy_r) = (rhs_g, rhs_r)."""
                if k == 0:
                    return rhs_g / diag_g, np.zeros(0)
                dg_inv_rhs = rhs_g / diag_g
                dy_r = np.linalg.solve(schur, rhs_r - u_block.T @ dg_inv_rhs)
                dy_g = (rhs_g - u_block @ dy_r) / diag_g
                return dy_g, dy_r

            def newton(rxz: np.ndarray, rwv: np.ndarray, rsz: np.ndarray):
                """One KKT solve for given complementarity residuals."""
                # Collapse to the normal equations in (dy_g, dy_r).
                g_x = r_dual_x - rxz / x_safe
                if any_bounded:
                    g_x = g_x + where_bounded(rwv / w_safe - vw_r_upper, 0.0)
                # dx = theta_x (A'dy + g_x) form:
                rhs_g = neg_r_groups - group_sums(theta_x * g_x)
                if k:
                    g_s = r_dual_s - rsz / s_safe
                    rhs_r = neg_r_coupling - rt @ g_x - theta_s * g_s
                else:
                    rhs_r = np.zeros(0)
                dy_g, dy_r = solve_normal(rhs_g, rhs_r)
                at_dy = dy_g[group_index] + (r_mat.T @ dy_r if k else 0.0)
                dx = theta_x * (at_dy + g_x)
                dz = -(rxz + z * dx) / x_safe
                dw = where_bounded(-r_upper - dx, 0.0)
                dv = where_bounded(-(rwv + v * dw) / w_safe, 0.0)
                if k:
                    ds = theta_s * (dy_r + g_s)
                    dz_s = -(rsz + z_s * ds) / s_safe
                else:
                    ds = np.zeros(0)
                    dz_s = np.zeros(0)
                return dx, ds, dw, dy_g, dy_r, dz, dz_s, dv

            def max_step(values: np.ndarray, deltas: np.ndarray) -> float:
                negative = deltas < 0
                blocked = values[negative]
                if not blocked.size:
                    return 1.0
                return float(min(1.0, (-blocked / deltas[negative]).min()))

            # The boundary step is a min over every blocking component, so the
            # three families can be ratio-tested in one fused call (the min over
            # the concatenation equals the min of the per-family minima).  The
            # iterate is frozen until the update, so its concatenation is shared
            # by the predictor and corrector ratio tests.
            primal_vals = np.concatenate((x, s, of_bounded(w)))
            dual_vals = np.concatenate((z, z_s, of_bounded(v)))

            def primal_step(dx: np.ndarray, ds: np.ndarray, dw: np.ndarray) -> float:
                return max_step(primal_vals, np.concatenate((dx, ds, of_bounded(dw))))

            def dual_step(dz: np.ndarray, dz_s: np.ndarray, dv: np.ndarray) -> float:
                return max_step(dual_vals, np.concatenate((dz, dz_s, of_bounded(dv))))

            # Predictor.
            rxz_aff = x * z
            rwv_aff = where_bounded(w * v, 0.0)
            rsz_aff = s * z_s if k else np.zeros(0)
            aff = newton(rxz_aff, rwv_aff, rsz_aff)
            dx_a, ds_a, dw_a, _, _, dz_a, dzs_a, dv_a = aff
            alpha_p = primal_step(dx_a, ds_a, dw_a)
            alpha_d = dual_step(dz_a, dzs_a, dv_a)
            mu_aff = (
                float((x + alpha_p * dx_a) @ (z + alpha_d * dz_a))
                + (float((s + alpha_p * ds_a) @ (z_s + alpha_d * dzs_a)) if k else 0.0)
                + float(
                    (of_bounded(w) + alpha_p * of_bounded(dw_a))
                    @ (of_bounded(v) + alpha_d * of_bounded(dv_a))
                )
            ) / num_comp
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

            # Corrector.  The predictor residuals are exactly x*z, masked w*v and
            # s*z_s, so reuse them instead of recomputing the products.
            sigma_mu = sigma * mu
            rxz = rxz_aff + dx_a * dz_a - sigma_mu
            rwv = where_bounded(rwv_aff + dw_a * dv_a - sigma_mu, 0.0)
            rsz = (rsz_aff + ds_a * dzs_a - sigma_mu) if k else np.zeros(0)
            dx, ds, dw, dy_g, dy_r, dz, dz_s, dv = newton(rxz, rwv, rsz)

            alpha_p = step_fraction * primal_step(dx, ds, dw)
            alpha_d = step_fraction * dual_step(dz, dz_s, dv)
            # The step arrays are dead after the update, so scale them in place
            # and accumulate: same float ops as `x = x + alpha_p * dx` without
            # the temporaries.
            dx *= alpha_p
            x += dx
            ds *= alpha_p
            s += ds
            dy_g *= alpha_d
            y_g += dy_g
            dy_r *= alpha_d
            y_r += dy_r
            dz *= alpha_d
            z += dz
            dz_s *= alpha_d
            z_s += dz_s
            if all_bounded:
                dw *= alpha_p
                w += dw
                dv *= alpha_d
                v += dv
            else:
                w = np.where(bounded, w + alpha_p * dw, w)
                v = np.where(bounded, v + alpha_d * dv, v)

            # min() <= 0 matches any(v <= 0) here: iterates are never NaN before
            # this check (steps are finite multiples of finite directions).
            if x.min() <= 0 or z.min() <= 0 or (k and (s.min() <= 0 or z_s.min() <= 0)):
                return LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="iterate left the positive orthant",
                )

        return LPResult(
            status=LPStatus.ITERATION_LIMIT,
            x=None,
            objective=float("nan"),
            iterations=options.max_iterations,
            backend=_BACKEND_NAME,
            message="no convergence within the iteration cap",
        )


class _Block:
    """Per-block bookkeeping for :func:`solve_structured_batch`."""

    __slots__ = (
        "idx", "lp", "sl", "ks", "gs", "n", "k", "m", "r_mat", "bounded",
        "u_off", "schur_diag", "norm_b", "norm_c", "num_comp", "mu",
        "rt", "u_block", "schur",
    )


def solve_structured_batch(
    blocks: Sequence[GroupedBoundedLP],
    options: StructuredIPMOptions = StructuredIPMOptions(),
) -> List[LPResult]:
    """Solve many independent :class:`GroupedBoundedLP` blocks in lockstep.

    The blocks are concatenated into one block-diagonal mega-problem and
    every Mehrotra iteration advances all of them at once: elementwise work
    (residuals, scaling, directions, updates) runs on the concatenated
    state vectors, while the per-block pieces that must not mix — coupling
    matvecs, the K×K Schur factorisations, complementarity/error dots,
    step-length minima and convergence decisions — run on each block's
    contiguous slice.  Because the per-slice operations see exactly the
    arrays the sequential solver would, and a min/bincount/dot over a
    block's slice of the concatenation equals the same reduction over the
    standalone block, every block follows the **bit-identical iterate
    trajectory** of :func:`solve_structured` (the only tolerated deviation
    is the sign of floating-point zeros in masked fill positions, which
    can never change a magnitude or comparison).

    Per-block convergence masking: a block that converges (or leaves the
    positive orthant) is *frozen* — its :class:`LPResult` is recorded with
    its own iteration count, its state slices are overwritten with benign
    constants so the global elementwise passes stay finite, and its
    per-block work (factorise/solve/reduce) is skipped while the
    stragglers continue.  The loop exits as soon as every block is frozen.

    In reference mode this degrades to a per-block sequential loop so the
    differential baselines never see the batched code path.

    :param blocks: independent structured LPs (any mix of sizes; ragged
        batches and a batch of one are fine).
    :param options: shared solver tunables.
    :returns: one :class:`LPResult` per block, in input order.
    """
    if not blocks:
        return []
    if perf.reference_mode():
        return [solve_structured(lp, options) for lp in blocks]

    num = len(blocks)
    n_sizes = np.array([lp.num_vars for lp in blocks], dtype=np.intp)
    k_sizes = np.array([lp.num_coupling for lp in blocks], dtype=np.intp)
    g_sizes = np.array([lp.num_groups for lp in blocks], dtype=np.intp)
    v_off = np.concatenate(([0], np.cumsum(n_sizes)))
    k_off = np.concatenate(([0], np.cumsum(k_sizes)))
    g_off = np.concatenate(([0], np.cumsum(g_sizes)))
    n_tot = int(v_off[-1])
    k_tot = int(k_off[-1])
    g_tot = int(g_off[-1])

    c = np.concatenate([lp.c for lp in blocks])
    u = np.concatenate([lp.upper for lp in blocks])
    group_rhs = np.concatenate([lp.group_rhs for lp in blocks])
    coupling_b = np.concatenate([lp.coupling_b for lp in blocks])
    gi_off = np.concatenate(
        [lp.group_index + g_off[b] for b, lp in enumerate(blocks)]
    )
    bounded = np.isfinite(u)
    all_bounded = bool(bounded.all())

    def masked(values: np.ndarray, fill: float) -> np.ndarray:
        # Identity when every variable is bounded (the real-workload case),
        # per-element identical to each block's own where_bounded otherwise.
        return values if all_bounded else np.where(bounded, values, fill)

    info: List[_Block] = []
    for b, lp in enumerate(blocks):
        blk = _Block()
        blk.idx = b
        blk.lp = lp
        blk.n = lp.num_vars
        blk.k = lp.num_coupling
        blk.m = lp.num_groups
        blk.sl = slice(int(v_off[b]), int(v_off[b + 1]))
        blk.ks = slice(int(k_off[b]), int(k_off[b + 1]))
        blk.gs = slice(int(g_off[b]), int(g_off[b + 1]))
        blk.r_mat = lp.coupling_a
        bounded_b = bounded[blk.sl]
        blk.bounded = None if bool(bounded_b.all()) else bounded_b
        blk.u_off = (
            (np.arange(blk.k)[:, None] * blk.m + lp.group_index[None, :]).ravel()
            if blk.k
            else None
        )
        blk.schur_diag = np.diag_indices(blk.k) if blk.k else None
        blk.norm_b = (
            1.0
            + float(np.linalg.norm(lp.group_rhs))
            + float(np.linalg.norm(lp.coupling_b))
        )
        blk.norm_c = 1.0 + float(np.linalg.norm(lp.c))
        blk.num_comp = blk.n + blk.k + int(bounded_b.sum())
        blk.mu = 0.0
        info.append(blk)

    # ---- starting point (same expressions as the sequential solver) -----
    x = np.where(bounded, np.minimum(u * 0.5, 1.0), 1.0)
    x = np.maximum(x, 1e-3)
    s = np.ones(k_tot)
    w = np.where(bounded, u - x, 1.0)
    w = np.maximum(w, 1e-3)
    y_g = np.zeros(g_tot)
    y_r = np.zeros(k_tot)
    z = np.ones(n_tot)
    z_s = np.ones(k_tot)
    v = np.where(bounded, 1.0, 0.0)

    # Per-block matvec landing buffers: active slices are refilled every
    # iteration, frozen slices are zeroed once at freeze time so the global
    # elementwise passes never mix in stale values.
    mv = np.zeros(k_tot)        # r_mat @ x
    at_y = np.zeros(n_tot)      # r_mat.T @ y_r
    rtgx = np.zeros(k_tot)      # rt @ g_x
    ub_dyr = np.zeros(g_tot)    # u_block @ dy_r
    at_dyr = np.zeros(n_tot)    # r_mat.T @ dy_r
    dy_r = np.zeros(k_tot)

    # Per-block step lengths / centering, expanded to per-element arrays by
    # np.repeat; frozen blocks keep 0.0 so their state is a fixed point of
    # the global update (x + 0*dx is bitwise x).
    ap_blocks = np.zeros(num)
    ad_blocks = np.zeros(num)
    sm_blocks = np.zeros(num)

    results: List[Optional[LPResult]] = [None] * num
    active = list(info)

    def freeze(blk: _Block, result: LPResult) -> None:
        results[blk.idx] = result
        sl, ks, gs = blk.sl, blk.ks, blk.gs
        x[sl] = 1.0
        w[sl] = 1.0
        z[sl] = 1.0
        v[sl] = 1.0
        s[ks] = 1.0
        z_s[ks] = 1.0
        y_r[ks] = 0.0
        y_g[gs] = 0.0
        mv[ks] = 0.0
        at_y[sl] = 0.0
        rtgx[ks] = 0.0
        ub_dyr[gs] = 0.0
        at_dyr[sl] = 0.0
        dy_r[ks] = 0.0
        ap_blocks[blk.idx] = 0.0
        ad_blocks[blk.idx] = 0.0
        sm_blocks[blk.idx] = 0.0
        blk.rt = None
        blk.u_block = None
        blk.schur = None

    tolerance = options.tolerance
    step_fraction = options.step_fraction
    inf = np.inf

    # invalid="ignore" on top of the sequential solver's errstate: the
    # fused ratio tests evaluate both np.where branches, and the masked-out
    # branch may hit 0/0 before being discarded.
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        for iteration in range(1, options.max_iterations + 1):
            if not active:
                break

            # ---- residuals: per-block matvecs + global elementwise ------
            for blk in active:
                if blk.k:
                    mv[blk.ks] = blk.r_mat @ x[blk.sl]
                    at_y[blk.sl] = blk.r_mat.T @ y_r[blk.ks]
            r_groups = np.bincount(gi_off, weights=x, minlength=g_tot) - group_rhs
            r_coupling = mv + s - coupling_b
            r_upper = masked(x + w - u, 0.0)
            r_dual_x = at_y + y_g[gi_off] + z - v - c
            r_dual_s = y_r + z_s

            # ---- per-block convergence (own mu / residual norms) --------
            still = []
            for blk in active:
                sl, ks, gs = blk.sl, blk.ks, blk.gs
                if blk.bounded is None:
                    wb, vb = w[sl], v[sl]
                else:
                    wb, vb = w[sl][blk.bounded], v[sl][blk.bounded]
                mu_b = (
                    float(x[sl] @ z[sl])
                    + float(s[ks] @ z_s[ks])
                    + float(wb @ vb)
                ) / blk.num_comp
                rg = r_groups[gs]
                rc = r_coupling[ks]
                ru = r_upper[sl]
                primal_err = (
                    math.sqrt(float(rg @ rg))
                    + math.sqrt(float(rc @ rc))
                    + math.sqrt(float(ru @ ru))
                ) / blk.norm_b
                rdx = r_dual_x[sl]
                rds = r_dual_s[ks]
                dual_err = (
                    math.sqrt(float(rdx @ rdx)) + math.sqrt(float(rds @ rds))
                ) / blk.norm_c
                if max(primal_err, dual_err, mu_b) < tolerance:
                    solution = x[sl].copy()
                    freeze(
                        blk,
                        LPResult(
                            status=LPStatus.OPTIMAL,
                            x=solution,
                            objective=blk.lp.objective(solution),
                            iterations=iteration - 1,
                            backend=_BACKEND_NAME,
                        ),
                    )
                else:
                    blk.mu = mu_b
                    still.append(blk)
            active = still
            if not active:
                break

            # ---- scaling (global) + Schur complements (per block) -------
            x_safe = np.maximum(x, 1e-300)
            w_safe = np.maximum(w, 1e-300)
            s_safe = np.maximum(s, 1e-300)
            v_over_w = v / w_safe
            d_x = z / x_safe + masked(v_over_w, 0.0)
            d_s = z_s / s_safe
            theta_x = 1.0 / np.clip(d_x, 1e-12, 1e12)
            theta_s = 1.0 / np.clip(d_s, 1e-12, 1e12)
            diag_g = np.maximum(
                np.bincount(gi_off, weights=theta_x, minlength=g_tot), 1e-300
            )
            neg_r_groups = -r_groups
            neg_r_coupling = -r_coupling
            vw_r_upper = v_over_w * r_upper

            for blk in active:
                if not blk.k:
                    continue
                rt = blk.r_mat * theta_x[blk.sl]
                u_block = (
                    np.bincount(
                        blk.u_off, weights=rt.ravel(), minlength=blk.m * blk.k
                    )
                    .reshape(blk.k, blk.m)
                    .T
                )
                schur = rt @ blk.r_mat.T
                schur[blk.schur_diag] += theta_s[blk.ks]
                schur -= u_block.T @ (u_block / diag_g[blk.gs][:, None])
                schur[blk.schur_diag] += 1e-12 * (
                    1.0 + schur.trace() / max(blk.k, 1)
                )
                blk.rt = rt
                blk.u_block = u_block
                blk.schur = schur

            def newton(rxz, rwv, rsz):
                """One lockstep KKT solve for given complementarity residuals."""
                g_x = r_dual_x - rxz / x_safe
                g_x = g_x + masked(rwv / w_safe - vw_r_upper, 0.0)
                rhs_g = neg_r_groups - np.bincount(
                    gi_off, weights=theta_x * g_x, minlength=g_tot
                )
                g_s = r_dual_s - rsz / s_safe
                for blk in active:
                    if blk.k:
                        rtgx[blk.ks] = blk.rt @ g_x[blk.sl]
                rhs_r = neg_r_coupling - rtgx - theta_s * g_s
                dg_inv_rhs = rhs_g / diag_g
                for blk in active:
                    if not blk.k:
                        continue
                    ks, gs = blk.ks, blk.gs
                    dy_r[ks] = np.linalg.solve(
                        blk.schur, rhs_r[ks] - blk.u_block.T @ dg_inv_rhs[gs]
                    )
                    ub_dyr[gs] = blk.u_block @ dy_r[ks]
                    at_dyr[blk.sl] = blk.r_mat.T @ dy_r[ks]
                dy_g = (rhs_g - ub_dyr) / diag_g
                at_dy = dy_g[gi_off] + at_dyr
                dx = theta_x * (at_dy + g_x)
                dz = -(rxz + z * dx) / x_safe
                dw = masked(-r_upper - dx, 0.0)
                dv = masked(-(rwv + v * dw) / w_safe, 0.0)
                ds = theta_s * (dy_r + g_s)
                dz_s = -(rsz + z_s * ds) / s_safe
                return dx, ds, dw, dy_g, dy_r, dz, dz_s, dv

            def ratios(values, deltas):
                return np.where(deltas < 0, -values / deltas, inf)

            def ratios_bounded(values, deltas):
                if all_bounded:
                    return np.where(deltas < 0, -values / deltas, inf)
                return np.where((deltas < 0) & bounded, -values / deltas, inf)

            def block_steps(dx, ds, dw, dz, dz_s, dv):
                """Per-block boundary steps: min over each block's slice of
                the fused per-family ratio arrays (equals the sequential
                min over the block's concatenated families)."""
                rat_x = ratios(x, dx)
                rat_s = ratios(s, ds)
                rat_w = ratios_bounded(w, dw)
                rat_z = ratios(z, dz)
                rat_zs = ratios(z_s, dz_s)
                rat_v = ratios_bounded(v, dv)
                out = []
                for blk in active:
                    sl, ks = blk.sl, blk.ks
                    ap = min(
                        1.0,
                        float(rat_x[sl].min(initial=inf)),
                        float(rat_s[ks].min(initial=inf)),
                        float(rat_w[sl].min(initial=inf)),
                    )
                    ad = min(
                        1.0,
                        float(rat_z[sl].min(initial=inf)),
                        float(rat_zs[ks].min(initial=inf)),
                        float(rat_v[sl].min(initial=inf)),
                    )
                    out.append((ap, ad))
                return out

            # ---- predictor ----------------------------------------------
            rxz_aff = x * z
            rwv_aff = masked(w * v, 0.0)
            rsz_aff = s * z_s
            aff = newton(rxz_aff, rwv_aff, rsz_aff)
            dx_a, ds_a, dw_a, _, _, dz_a, dzs_a, dv_a = aff
            for blk, (ap_b, ad_b) in zip(
                active, block_steps(dx_a, ds_a, dw_a, dz_a, dzs_a, dv_a)
            ):
                sl, ks = blk.sl, blk.ks
                xa = x[sl] + ap_b * dx_a[sl]
                za = z[sl] + ad_b * dz_a[sl]
                if blk.bounded is None:
                    wb, dwb = w[sl], dw_a[sl]
                    vb, dvb = v[sl], dv_a[sl]
                else:
                    bb = blk.bounded
                    wb, dwb = w[sl][bb], dw_a[sl][bb]
                    vb, dvb = v[sl][bb], dv_a[sl][bb]
                mu_aff = (
                    float(xa @ za)
                    + (
                        float(
                            (s[ks] + ap_b * ds_a[ks])
                            @ (z_s[ks] + ad_b * dzs_a[ks])
                        )
                        if blk.k
                        else 0.0
                    )
                    + float((wb + ap_b * dwb) @ (vb + ad_b * dvb))
                ) / blk.num_comp
                sigma = (mu_aff / blk.mu) ** 3 if blk.mu > 0 else 0.0
                sm_blocks[blk.idx] = sigma * blk.mu

            # ---- corrector ----------------------------------------------
            sm_v = np.repeat(sm_blocks, n_sizes)
            sm_k = np.repeat(sm_blocks, k_sizes)
            rxz = rxz_aff + dx_a * dz_a - sm_v
            rwv = masked(rwv_aff + dw_a * dv_a - sm_v, 0.0)
            rsz = rsz_aff + ds_a * dzs_a - sm_k
            dx, ds, dw, dy_g, dy_r_c, dz, dz_s, dv = newton(rxz, rwv, rsz)

            for blk, (ap_b, ad_b) in zip(
                active, block_steps(dx, ds, dw, dz, dz_s, dv)
            ):
                ap_blocks[blk.idx] = step_fraction * ap_b
                ad_blocks[blk.idx] = step_fraction * ad_b

            ap_v = np.repeat(ap_blocks, n_sizes)
            ap_k = np.repeat(ap_blocks, k_sizes)
            ad_v = np.repeat(ad_blocks, n_sizes)
            ad_k = np.repeat(ad_blocks, k_sizes)
            ad_g = np.repeat(ad_blocks, g_sizes)
            x += ap_v * dx
            s += ap_k * ds
            y_g += ad_g * dy_g
            y_r += ad_k * dy_r_c
            z += ad_v * dz
            z_s += ad_k * dz_s
            if all_bounded:
                w += ap_v * dw
                v += ad_v * dv
            else:
                w = np.where(bounded, w + ap_v * dw, w)
                v = np.where(bounded, v + ad_v * dv, v)

            # ---- per-block orthant check --------------------------------
            still = []
            for blk in active:
                sl, ks = blk.sl, blk.ks
                if (
                    x[sl].min(initial=inf) <= 0
                    or z[sl].min(initial=inf) <= 0
                    or (
                        blk.k
                        and (s[ks].min() <= 0 or z_s[ks].min() <= 0)
                    )
                ):
                    freeze(
                        blk,
                        LPResult(
                            status=LPStatus.NUMERICAL_ERROR,
                            x=None,
                            objective=float("nan"),
                            iterations=iteration,
                            backend=_BACKEND_NAME,
                            message="iterate left the positive orthant",
                        ),
                    )
                else:
                    still.append(blk)
            active = still

    for blk in active:
        results[blk.idx] = LPResult(
            status=LPStatus.ITERATION_LIMIT,
            x=None,
            objective=float("nan"),
            iterations=options.max_iterations,
            backend=_BACKEND_NAME,
            message="no convergence within the iteration cap",
        )
    return results  # type: ignore[return-value]
