"""Structured interior-point solver for P2-shaped linear programs.

The relaxation P2 (Section III-A) has a very particular shape:

.. math::

   \\min c^T x \\quad \\text{s.t.} \\quad
   \\sum_{i \\in g} x_i = b_g \\; \\forall g, \\quad
   R x \\le r, \\quad 0 \\le x \\le u,

where the groups *g* partition the variables (one group per task: C4) and
the coupling block *R* has only a few rows (one per device plus one for the
base station: C2/C3).  A generic dense solver pays O((nm)³) per iteration;
here the normal-equations matrix :math:`A \\Theta A^T` is block
``[[diagonal, U], [Uᵀ, small]]``, so each Newton step costs
O(n·K + K³) with K = #coupling rows — effectively linear in the number of
tasks.  This is what lets the figure benches sweep to 900 tasks.

The algorithm is the same Mehrotra predictor–corrector as
:mod:`repro.lp.interior_point`, extended with native variable upper bounds
(no slack blow-up) following the standard bounded-variable derivation
(Wright, *Primal-Dual Interior-Point Methods*, ch. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import perf
from repro.lp._structured_reference import solve_structured_reference
from repro.lp.result import LPResult, LPStatus

__all__ = ["GroupedBoundedLP", "StructuredIPMOptions", "solve_structured"]

_BACKEND_NAME = "structured-ipm"


@dataclass(frozen=True)
class StructuredIPMOptions:
    """Tunables for the structured solver.

    :param tolerance: relative residual / complementarity target.  The
        default stops at 1e-8: the scaling-matrix clipping puts the
        achievable floor near 1e-9, where the last digits cost dozens of
        stalled iterations for nothing the rounding step could ever see.
    :param max_iterations: iteration cap.
    :param step_fraction: damping of the step to the boundary.
    """

    tolerance: float = 1e-8
    max_iterations: int = 200
    step_fraction: float = 0.9995


class GroupedBoundedLP:
    """A P2-shaped LP: partitioned equality groups + few coupling rows.

    :param c: objective, length n.
    :param group_index: for each variable, the index of its equality group
        (every variable belongs to exactly one group).
    :param group_rhs: right-hand side :math:`b_g` per group.
    :param coupling_a: coupling inequality matrix, shape (K, n); may be
        empty (K = 0).
    :param coupling_b: coupling right-hand sides, length K.
    :param upper: per-variable upper bounds (np.inf allowed).
    """

    def __init__(
        self,
        c: np.ndarray,
        group_index: np.ndarray,
        group_rhs: np.ndarray,
        coupling_a: Optional[np.ndarray] = None,
        coupling_b: Optional[np.ndarray] = None,
        upper: Optional[np.ndarray] = None,
    ) -> None:
        self.c = np.asarray(c, dtype=float)
        n = self.c.shape[0]
        self.group_index = np.asarray(group_index, dtype=int)
        if self.group_index.shape != (n,):
            raise ValueError("group_index must map every variable")
        self.group_rhs = np.asarray(group_rhs, dtype=float)
        num_groups = self.group_rhs.shape[0]
        if num_groups == 0:
            raise ValueError("need at least one equality group")
        if self.group_index.min(initial=0) < 0 or (
            n > 0 and self.group_index.max() >= num_groups
        ):
            raise ValueError("group_index out of range")

        if coupling_a is None:
            coupling_a = np.zeros((0, n))
            coupling_b = np.zeros(0)
        self.coupling_a = np.asarray(coupling_a, dtype=float)
        self.coupling_b = np.asarray(coupling_b, dtype=float)
        if self.coupling_a.shape[1] != n:
            raise ValueError(f"coupling_a must have {n} columns")
        if self.coupling_b.shape != (self.coupling_a.shape[0],):
            raise ValueError("coupling_b length must match coupling_a rows")

        self.upper = (
            np.full(n, np.inf) if upper is None else np.asarray(upper, dtype=float)
        )
        if self.upper.shape != (n,):
            raise ValueError(f"upper must have length {n}")
        if np.any(self.upper <= 0):
            raise ValueError("upper bounds must be positive (use np.inf for none)")

    @property
    def num_vars(self) -> int:
        """n, the number of decision variables."""
        return self.c.shape[0]

    @property
    def num_groups(self) -> int:
        """Number of equality groups."""
        return self.group_rhs.shape[0]

    @property
    def num_coupling(self) -> int:
        """K, the number of coupling inequality rows."""
        return self.coupling_a.shape[0]

    def group_sums(self, values: np.ndarray) -> np.ndarray:
        """Per-group sums of a per-variable vector (G·values)."""
        return np.bincount(self.group_index, weights=values, minlength=self.num_groups)

    def objective(self, x: np.ndarray) -> float:
        """Evaluate :math:`c^T x`."""
        return float(self.c @ x)

    def residuals(self, x: np.ndarray) -> dict:
        """Max violation per constraint family for a candidate ``x``."""
        out = {
            "lower": float(np.max(np.maximum(-x, 0.0), initial=0.0)),
            "upper": float(np.max(np.maximum(x - self.upper, 0.0), initial=0.0)),
            "groups": float(
                np.max(np.abs(self.group_sums(x) - self.group_rhs), initial=0.0)
            ),
        }
        if self.num_coupling:
            out["coupling"] = float(
                np.max(
                    np.maximum(self.coupling_a @ x - self.coupling_b, 0.0), initial=0.0
                )
            )
        return out

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every constraint within ``tol``."""
        return all(v <= tol for v in self.residuals(x).values())


def solve_structured(
    lp: GroupedBoundedLP, options: StructuredIPMOptions = StructuredIPMOptions()
) -> LPResult:
    """Solve a :class:`GroupedBoundedLP` with the structured Mehrotra IPM.

    The combined variable vector is (x, s) with s the coupling slacks; the
    equality system is ``[[G, 0], [R, I]] (x, s) = (b_g, r)``.  The normal
    equations are solved by eliminating the diagonal group block (Schur
    complement on the K×K coupling block).

    :param lp: the structured LP.
    :param options: solver tunables.
    """
    if perf.reference_mode():
        # Differential-testing / benchmarking hook: run the seed solver.
        return solve_structured_reference(lp, options)
    n = lp.num_vars
    k = lp.num_coupling
    m_g = lp.num_groups
    c = lp.c
    r_mat = lp.coupling_a
    bounded = np.isfinite(lp.upper)
    any_bounded = bool(np.any(bounded))
    all_bounded = bool(np.all(bounded))
    u = lp.upper

    # P2 instances built from real workloads bound every variable (the A1
    # deadline caps), in which case masking by ``bounded`` is the identity:
    # ``np.where(bounded, a, fill) == a`` and ``a[bounded] == a`` exactly.
    def where_bounded(values: np.ndarray, fill) -> np.ndarray:
        return values if all_bounded else np.where(bounded, values, fill)

    def of_bounded(values: np.ndarray) -> np.ndarray:
        return values if all_bounded else values[bounded]
    # Flattened bucket indices batching the K per-row group_sums of the
    # U-block into one bincount (bit-identical: bincount accumulates each
    # bucket in element order, unchanged by the offset flattening).
    u_block_offsets = (
        (np.arange(k)[:, None] * m_g + lp.group_index[None, :]).ravel()
        if k
        else None
    )
    # Diagonal index of the K×K Schur complement, shared by every solve.
    schur_diag = np.diag_indices(k) if k else None

    # ---- starting point -------------------------------------------------
    x = np.where(bounded, np.minimum(u * 0.5, 1.0), 1.0)
    x = np.maximum(x, 1e-3)
    s = np.ones(k)
    w = where_bounded(u - x, 1.0)  # only meaningful where bounded
    w = np.maximum(w, 1e-3)
    y_g = np.zeros(m_g)
    y_r = np.zeros(k)
    z = np.ones(n)          # dual of x >= 0
    z_s = np.ones(k)        # dual of s >= 0
    v = np.where(bounded, 1.0, 0.0)  # dual of x <= u

    norm_b = 1.0 + float(np.linalg.norm(lp.group_rhs)) + float(np.linalg.norm(lp.coupling_b))
    norm_c = 1.0 + float(np.linalg.norm(c))
    num_comp = n + k + int(bounded.sum())

    def complementarity() -> float:
        return (
            float(x @ z) + float(s @ z_s) + float(of_bounded(w) @ of_bounded(v))
        ) / num_comp

    # Loop-invariant lookups, bound once (the loop body runs thousands of
    # times on very small arrays, where attribute access is measurable).
    group_sums = lp.group_sums
    group_rhs = lp.group_rhs
    group_index = lp.group_index
    coupling_b = lp.coupling_b
    tolerance = options.tolerance
    step_fraction = options.step_fraction

    # One errstate for the whole solve: the scaling divisions may
    # overflow/divide harmlessly (they are clipped right after), and
    # toggling the FP-error state every iteration is measurable on
    # small instances.  Settings only silence warnings; no numerics
    # change.
    with np.errstate(over="ignore", divide="ignore"):
        for iteration in range(1, options.max_iterations + 1):
            # Residuals.
            r_groups = group_sums(x) - group_rhs
            r_coupling = (r_mat @ x + s - coupling_b) if k else np.zeros(0)
            r_upper = where_bounded(x + w - u, 0.0)
            r_dual_x = (
                (r_mat.T @ y_r if k else 0.0) + y_g[group_index] + z - v - c
            )
            r_dual_s = y_r + z_s if k else np.zeros(0)

            mu = complementarity()
            # sqrt(v @ v) is np.linalg.norm for real 1-D vectors, minus the
            # dispatch overhead (same BLAS dot, same rounding).
            primal_err = (
                math.sqrt(float(r_groups @ r_groups))
                + math.sqrt(float(r_coupling @ r_coupling))
                + math.sqrt(float(r_upper @ r_upper))
            ) / norm_b
            dual_err = (
                math.sqrt(float(r_dual_x @ r_dual_x))
                + math.sqrt(float(r_dual_s @ r_dual_s))
            ) / norm_c
            if max(primal_err, dual_err, mu) < tolerance:
                return LPResult(
                    status=LPStatus.OPTIMAL,
                    x=x.copy(),
                    objective=lp.objective(x),
                    iterations=iteration - 1,
                    backend=_BACKEND_NAME,
                )

            # Safe denominators, shared by the scaling matrix and both Newton
            # solves this iteration (the iterate is fixed until the update).
            x_safe = np.maximum(x, 1e-300)
            w_safe = np.maximum(w, 1e-300)
            s_safe = np.maximum(s, 1e-300) if k else np.zeros(0)

            # Scaling diagonals (clip to keep the Schur system finite).
            v_over_w = v / w_safe
            d_x = z / x_safe + where_bounded(v_over_w, 0.0)
            d_s = z_s / s_safe if k else np.zeros(0)
            theta_x = 1.0 / np.clip(d_x, 1e-12, 1e12)
            theta_s = 1.0 / np.clip(d_s, 1e-12, 1e12) if k else np.zeros(0)

            # Normal-equation blocks.  Everything here is fixed for the two
            # Newton solves of this iteration, so build it (including the Schur
            # complement and the negated residuals) exactly once.
            diag_g = np.maximum(group_sums(theta_x), 1e-300)
            if k:
                rt = r_mat * theta_x  # (K, n) scaled rows
                u_block = (
                    np.bincount(
                        u_block_offsets, weights=rt.ravel(), minlength=m_g * k
                    )
                    .reshape(k, m_g)
                    .T
                )
                # rt @ r_mat.T + diag(theta_s) minus the Schur correction,
                # accumulated in place (adding diag(theta_s) as a full matrix
                # only normalised off-diagonal -0.0 to +0.0, which compares
                # equal everywhere downstream).
                schur = rt @ r_mat.T
                schur[schur_diag] += theta_s
                schur -= u_block.T @ (u_block / diag_g[:, None])
                schur[schur_diag] += 1e-12 * (1.0 + schur.trace() / max(k, 1))
            else:
                u_block = np.zeros((m_g, 0))
            neg_r_groups = -r_groups
            neg_r_coupling = -r_coupling
            vw_r_upper = v_over_w * r_upper if any_bounded else None

            def solve_normal(rhs_g: np.ndarray, rhs_r: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
                """Solve [[D_g, U], [Uᵀ, S]] (dy_g, dy_r) = (rhs_g, rhs_r)."""
                if k == 0:
                    return rhs_g / diag_g, np.zeros(0)
                dg_inv_rhs = rhs_g / diag_g
                dy_r = np.linalg.solve(schur, rhs_r - u_block.T @ dg_inv_rhs)
                dy_g = (rhs_g - u_block @ dy_r) / diag_g
                return dy_g, dy_r

            def newton(rxz: np.ndarray, rwv: np.ndarray, rsz: np.ndarray):
                """One KKT solve for given complementarity residuals."""
                # Collapse to the normal equations in (dy_g, dy_r).
                g_x = r_dual_x - rxz / x_safe
                if any_bounded:
                    g_x = g_x + where_bounded(rwv / w_safe - vw_r_upper, 0.0)
                # dx = theta_x (A'dy + g_x) form:
                rhs_g = neg_r_groups - group_sums(theta_x * g_x)
                if k:
                    g_s = r_dual_s - rsz / s_safe
                    rhs_r = neg_r_coupling - rt @ g_x - theta_s * g_s
                else:
                    rhs_r = np.zeros(0)
                dy_g, dy_r = solve_normal(rhs_g, rhs_r)
                at_dy = dy_g[group_index] + (r_mat.T @ dy_r if k else 0.0)
                dx = theta_x * (at_dy + g_x)
                dz = -(rxz + z * dx) / x_safe
                dw = where_bounded(-r_upper - dx, 0.0)
                dv = where_bounded(-(rwv + v * dw) / w_safe, 0.0)
                if k:
                    ds = theta_s * (dy_r + g_s)
                    dz_s = -(rsz + z_s * ds) / s_safe
                else:
                    ds = np.zeros(0)
                    dz_s = np.zeros(0)
                return dx, ds, dw, dy_g, dy_r, dz, dz_s, dv

            def max_step(values: np.ndarray, deltas: np.ndarray) -> float:
                negative = deltas < 0
                blocked = values[negative]
                if not blocked.size:
                    return 1.0
                return float(min(1.0, (-blocked / deltas[negative]).min()))

            # The boundary step is a min over every blocking component, so the
            # three families can be ratio-tested in one fused call (the min over
            # the concatenation equals the min of the per-family minima).  The
            # iterate is frozen until the update, so its concatenation is shared
            # by the predictor and corrector ratio tests.
            primal_vals = np.concatenate((x, s, of_bounded(w)))
            dual_vals = np.concatenate((z, z_s, of_bounded(v)))

            def primal_step(dx: np.ndarray, ds: np.ndarray, dw: np.ndarray) -> float:
                return max_step(primal_vals, np.concatenate((dx, ds, of_bounded(dw))))

            def dual_step(dz: np.ndarray, dz_s: np.ndarray, dv: np.ndarray) -> float:
                return max_step(dual_vals, np.concatenate((dz, dz_s, of_bounded(dv))))

            # Predictor.
            rxz_aff = x * z
            rwv_aff = where_bounded(w * v, 0.0)
            rsz_aff = s * z_s if k else np.zeros(0)
            aff = newton(rxz_aff, rwv_aff, rsz_aff)
            dx_a, ds_a, dw_a, _, _, dz_a, dzs_a, dv_a = aff
            alpha_p = primal_step(dx_a, ds_a, dw_a)
            alpha_d = dual_step(dz_a, dzs_a, dv_a)
            mu_aff = (
                float((x + alpha_p * dx_a) @ (z + alpha_d * dz_a))
                + (float((s + alpha_p * ds_a) @ (z_s + alpha_d * dzs_a)) if k else 0.0)
                + float(
                    (of_bounded(w) + alpha_p * of_bounded(dw_a))
                    @ (of_bounded(v) + alpha_d * of_bounded(dv_a))
                )
            ) / num_comp
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

            # Corrector.  The predictor residuals are exactly x*z, masked w*v and
            # s*z_s, so reuse them instead of recomputing the products.
            sigma_mu = sigma * mu
            rxz = rxz_aff + dx_a * dz_a - sigma_mu
            rwv = where_bounded(rwv_aff + dw_a * dv_a - sigma_mu, 0.0)
            rsz = (rsz_aff + ds_a * dzs_a - sigma_mu) if k else np.zeros(0)
            dx, ds, dw, dy_g, dy_r, dz, dz_s, dv = newton(rxz, rwv, rsz)

            alpha_p = step_fraction * primal_step(dx, ds, dw)
            alpha_d = step_fraction * dual_step(dz, dz_s, dv)
            # The step arrays are dead after the update, so scale them in place
            # and accumulate: same float ops as `x = x + alpha_p * dx` without
            # the temporaries.
            dx *= alpha_p
            x += dx
            ds *= alpha_p
            s += ds
            dy_g *= alpha_d
            y_g += dy_g
            dy_r *= alpha_d
            y_r += dy_r
            dz *= alpha_d
            z += dz
            dz_s *= alpha_d
            z_s += dz_s
            if all_bounded:
                dw *= alpha_p
                w += dw
                dv *= alpha_d
                v += dv
            else:
                w = np.where(bounded, w + alpha_p * dw, w)
                v = np.where(bounded, v + alpha_d * dv, v)

            # min() <= 0 matches any(v <= 0) here: iterates are never NaN before
            # this check (steps are finite multiples of finite directions).
            if x.min() <= 0 or z.min() <= 0 or (k and (s.min() <= 0 or z_s.min() <= 0)):
                return LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="iterate left the positive orthant",
                )

        return LPResult(
            status=LPStatus.ITERATION_LIMIT,
            x=None,
            objective=float("nan"),
            iterations=options.max_iterations,
            backend=_BACKEND_NAME,
            message="no convergence within the iteration cap",
        )
