"""Dense two-phase primal simplex with Bland's anti-cycling rule.

Complements the interior-point solver: the simplex produces vertex (basic)
solutions, gives clean infeasible/unbounded verdicts, and is the reference
implementation our property-based tests cross-check the IPM against.
Suitable for the small and mid-sized LPs in this library; the interior-point
method is the default for the large relaxations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.warmstart import SimplexBasis
from repro.obs.tracer import traced

__all__ = ["SimplexOptions", "solve_simplex"]

_BACKEND_NAME = "simplex"


@dataclass(frozen=True)
class SimplexOptions:
    """Tunables for the simplex solver.

    :param tolerance: feasibility / optimality tolerance.
    :param max_iterations: pivot cap across both phases (0 = automatic).
    """

    tolerance: float = 1e-9
    max_iterations: int = 0

    def iteration_cap(self, num_rows: int, num_vars: int) -> int:
        """The pivot budget: explicit cap, or a generous size-based default."""
        if self.max_iterations > 0:
            return self.max_iterations
        return 50 * (num_rows + num_vars) + 1000


def _pivot(tableau: np.ndarray, row: int, col: int) -> None:
    """Gauss–Jordan pivot of ``tableau`` on (row, col), in place.

    One rank-1 update instead of a Python loop over rows: zeroing the
    pivot row's own factor makes the outer product a no-op there.
    """
    tableau[row] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row])


def _run_simplex(
    tableau: np.ndarray,
    basis: List[int],
    num_solve_vars: int,
    tolerance: float,
    max_iterations: int,
) -> Tuple[str, int]:
    """Iterate pivots until optimality/unboundedness; returns (verdict, count).

    The last tableau row is the objective row (reduced costs, minimisation);
    the last column is the right-hand side.  Bland's rule: entering variable
    is the lowest-index column with a negative reduced cost, leaving variable
    is the lowest-index row among minimum-ratio candidates.
    """
    num_rows = tableau.shape[0] - 1
    for iteration in range(max_iterations):
        reduced = tableau[-1, :num_solve_vars]
        candidates = np.flatnonzero(reduced < -tolerance)
        if candidates.size == 0:
            return "optimal", iteration
        col = int(candidates[0])

        ratios = np.full(num_rows, np.inf)
        column = tableau[:num_rows, col]
        positive = column > tolerance
        ratios[positive] = tableau[:num_rows, -1][positive] / column[positive]
        if not np.any(np.isfinite(ratios)):
            return "unbounded", iteration
        best = float(np.min(ratios))
        # Bland tie-break: among minimum-ratio rows, leave the basic
        # variable with the smallest index.
        tied = np.flatnonzero(ratios <= best + tolerance)
        row = int(min(tied, key=lambda r: basis[r]))

        _pivot(tableau, row, col)
        basis[row] = col
    return "iteration_limit", max_iterations


def _phase2_from_basis(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    columns: Tuple[int, ...],
) -> Optional[Tuple[np.ndarray, List[int]]]:
    """Build a phase-2 tableau directly from a known basis, or ``None``.

    Returns ``None`` when the basis is unusable for this problem — wrong
    size, out-of-range columns, singular basis matrix, or no longer primal
    feasible (the sweep moved the polytope from under it).
    """
    m, n = a.shape
    if len(columns) != m or len(set(columns)) != m:
        return None
    if any(col < 0 or col >= n for col in columns):
        return None
    basis_matrix = a[:, list(columns)]
    try:
        binv = np.linalg.inv(basis_matrix)
    except np.linalg.LinAlgError:
        return None
    rhs = binv @ b
    if not np.all(np.isfinite(rhs)) or float(np.min(rhs, initial=0.0)) < -1e-7:
        return None
    body = binv @ a
    if not np.all(np.isfinite(body)):
        return None

    phase2 = np.zeros((m + 1, n + 1))
    phase2[:m, :n] = body
    phase2[:m, -1] = rhs
    phase2[-1, :n] = c
    basis = list(columns)
    for row, var in enumerate(basis):
        if phase2[-1, var] != 0.0:
            phase2[-1] -= phase2[-1, var] * phase2[row]
    return phase2, basis


def _solve_standard_form(
    lp: StandardFormLP,
    options: SimplexOptions,
    warm_start: Optional[SimplexBasis] = None,
) -> LPResult:
    """Two-phase simplex on a standard-form LP."""
    # The tableau method is inherently dense; densify sparse inputs up front.
    a = lp.a.toarray() if sp.issparse(lp.a) else lp.a.copy()
    b = lp.b.copy()
    c = lp.c
    m, n = a.shape

    if n == 0:
        feasible = bool(np.allclose(b, 0.0))
        return LPResult(
            status=LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE,
            x=np.zeros(0) if feasible else None,
            objective=0.0,
            iterations=0,
            backend=_BACKEND_NAME,
        )

    # Normalise to b >= 0 so the artificial basis is feasible.
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0

    cap = options.iteration_cap(m, n)

    # ---- Warm start: re-use a previous optimal basis, skipping phase 1 -
    if isinstance(warm_start, SimplexBasis):
        warm = _phase2_from_basis(a, b, c, warm_start.columns)
        if warm is not None:
            phase2, basis = warm
            verdict, iters = _run_simplex(
                phase2, basis, n, options.tolerance, cap
            )
            if verdict == "optimal":
                return _extract_optimal(phase2, basis, c, n, iters, warm=True)
            if verdict == "unbounded":
                # A feasible point plus an unbounded ray is a true verdict.
                return LPResult(
                    LPStatus.UNBOUNDED, None, float("-inf"), iters, _BACKEND_NAME,
                    message="unbounded from warm-started basis",
                )
            # Pivot cap from the warm basis: retry cold below.

    # ---- Phase 1: minimise the sum of artificial variables -------------
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    # Objective row: sum of artificials, expressed in the non-basic vars.
    tableau[-1, :n] = -a.sum(axis=0)
    tableau[-1, -1] = -b.sum()
    basis = list(range(n, n + m))

    verdict, phase1_iters = _run_simplex(
        tableau, basis, n + m, options.tolerance, cap
    )
    if verdict == "iteration_limit":
        return LPResult(
            LPStatus.ITERATION_LIMIT, None, float("nan"), phase1_iters, _BACKEND_NAME,
            message="phase 1 hit the pivot cap",
        )
    phase1_value = -tableau[-1, -1]
    if phase1_value > 1e-7:
        return LPResult(
            LPStatus.INFEASIBLE, None, float("nan"), phase1_iters, _BACKEND_NAME,
            message=f"phase-1 optimum {phase1_value:.3e} > 0",
        )

    # Drive remaining artificials out of the basis (degenerate rows).
    for row in range(m):
        if basis[row] >= n:
            pivot_col = None
            for col in range(n):
                if abs(tableau[row, col]) > options.tolerance:
                    pivot_col = col
                    break
            if pivot_col is None:
                # Redundant constraint; the artificial stays at zero.
                continue
            _pivot(tableau, row, pivot_col)
            basis[row] = pivot_col

    # ---- Phase 2: original objective over the feasible basis -----------
    phase2 = np.zeros((m + 1, n + 1))
    phase2[:m, :n] = tableau[:m, :n]
    phase2[:m, -1] = tableau[:m, -1]
    phase2[-1, :n] = c
    # Express the objective in terms of the non-basic variables.
    for row, var in enumerate(basis):
        if var < n and phase2[-1, var] != 0.0:
            phase2[-1] -= phase2[-1, var] * phase2[row]

    verdict, phase2_iters = _run_simplex(phase2, basis, n, options.tolerance, cap)
    iterations = phase1_iters + phase2_iters
    if verdict == "unbounded":
        return LPResult(
            LPStatus.UNBOUNDED, None, float("-inf"), iterations, _BACKEND_NAME
        )
    if verdict == "iteration_limit":
        return LPResult(
            LPStatus.ITERATION_LIMIT, None, float("nan"), iterations, _BACKEND_NAME,
            message="phase 2 hit the pivot cap",
        )

    return _extract_optimal(phase2, basis, c, n, iterations)


def _extract_optimal(
    phase2: np.ndarray,
    basis: List[int],
    c: np.ndarray,
    n: int,
    iterations: int,
    warm: bool = False,
) -> LPResult:
    """Read the optimal vertex off a solved phase-2 tableau."""
    x = np.zeros(n)
    for row, var in enumerate(basis):
        if var < n:
            x[var] = phase2[row, -1]
    x = np.maximum(x, 0.0)  # clean up -1e-17 style noise
    return LPResult(
        status=LPStatus.OPTIMAL,
        x=x,
        objective=float(c @ x),
        iterations=iterations,
        backend=_BACKEND_NAME,
        message="warm-started" if warm else "",
        warm_start=SimplexBasis(columns=tuple(basis)),
    )


@traced("lp.simplex")
def solve_simplex(
    problem: Union[LinearProgram, StandardFormLP],
    options: SimplexOptions = SimplexOptions(),
    warm_start: Optional[SimplexBasis] = None,
) -> LPResult:
    """Solve an LP with the two-phase primal simplex method.

    Accepts either a bounded-variable :class:`LinearProgram` (converted to
    standard form; the returned ``x`` is in the original variable space) or
    a :class:`StandardFormLP`.

    :param problem: the LP to solve.
    :param options: solver tunables.
    :param warm_start: optional basis from a previous solve of a similar
        problem (e.g. the ``warm_start`` of its :class:`LPResult`).  The
        basis is validated and the solver falls back to the cold two-phase
        path when it does not apply, so a stale basis is never unsafe.
    """
    if isinstance(problem, LinearProgram):
        standard = problem.to_standard_form()
        result = _solve_standard_form(standard, options, warm_start=warm_start)
        if result.status.ok:
            x = standard.extract_original(result.x)
            return LPResult(
                status=result.status,
                x=x,
                objective=problem.objective(x),
                iterations=result.iterations,
                backend=result.backend,
                message=result.message,
                warm_start=result.warm_start,
            )
        return result
    return _solve_standard_form(problem, options, warm_start=warm_start)
