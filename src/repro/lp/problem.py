"""LP problem representation and standard-form conversion.

A :class:`LinearProgram` is the bounded-variable form our builders emit:

.. math::

   \\min c^T x \\quad \\text{s.t.} \\quad A_{ub} x \\le b_{ub},
   \\; A_{eq} x = b_{eq}, \\; 0 \\le x \\le u.

Solvers work on :class:`StandardFormLP` (:math:`\\min c^T x`, :math:`Ax=b`,
:math:`x \\ge 0`), produced by :meth:`LinearProgram.to_standard_form`, which
adds one slack per inequality row and one per finite upper bound.

Constraint matrices may be dense :class:`numpy.ndarray`\\ s or SciPy sparse
matrices; the builders emit CSR when ``RunContext.lp_sparse`` is on.  A
sparse :class:`LinearProgram` produces a sparse standard form, whose entries
are *exactly* the dense ones (assembly places coefficients, it never sums
them), so both representations solve bit-identically wherever the solver
performs the same floating-point operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["LinearProgram", "StandardFormLP"]

#: A constraint matrix: dense ndarray or any SciPy sparse container.
MatrixLike = Union[np.ndarray, sp.spmatrix, sp.sparray]


def _as_matrix(mat: MatrixLike) -> MatrixLike:
    """Normalise a constraint block: CSR float for sparse, ndarray float else."""
    if sp.issparse(mat):
        return sp.csr_array(mat, dtype=float)
    return np.asarray(mat, dtype=float)


@dataclass(frozen=True)
class StandardFormLP:
    """An LP in standard equality form: min c·x, A x = b, x ≥ 0.

    :param c: objective, length n.
    :param a: constraint matrix, shape (m, n).
    :param b: right-hand side, length m.
    :param num_original: how many leading variables map back to the source
        :class:`LinearProgram`'s variables (the rest are slacks).
    """

    c: np.ndarray
    a: MatrixLike
    b: np.ndarray
    num_original: int

    def __post_init__(self) -> None:
        m, n = self.a.shape
        if self.c.shape != (n,):
            raise ValueError(f"c must have length {n}, got {self.c.shape}")
        if self.b.shape != (m,):
            raise ValueError(f"b must have length {m}, got {self.b.shape}")
        if not 0 <= self.num_original <= n:
            raise ValueError("num_original out of range")

    @property
    def num_rows(self) -> int:
        """m, the number of equality constraints."""
        return self.a.shape[0]

    @property
    def num_vars(self) -> int:
        """n, the number of non-negative variables (original + slack)."""
        return self.a.shape[1]

    @property
    def is_sparse(self) -> bool:
        """Whether the constraint matrix is a SciPy sparse container."""
        return sp.issparse(self.a)

    def extract_original(self, x: np.ndarray) -> np.ndarray:
        """Project a standard-form solution back to the original variables."""
        return np.asarray(x[: self.num_original], dtype=float).copy()


class LinearProgram:
    """A bounded-variable linear program.

    Any of the constraint blocks may be omitted.  Variables are always
    non-negative; pass ``np.inf`` entries in ``upper_bounds`` for unbounded
    variables.

    :param c: objective coefficients (minimisation), length n.
    :param a_ub: inequality matrix (rows: constraints), or ``None``.
    :param b_ub: inequality right-hand sides.
    :param a_eq: equality matrix, or ``None``.
    :param b_eq: equality right-hand sides.
    :param upper_bounds: per-variable upper bounds, or ``None`` for all-∞.
    """

    def __init__(
        self,
        c: np.ndarray,
        a_ub: Optional[MatrixLike] = None,
        b_ub: Optional[np.ndarray] = None,
        a_eq: Optional[MatrixLike] = None,
        b_eq: Optional[np.ndarray] = None,
        upper_bounds: Optional[np.ndarray] = None,
    ) -> None:
        self.c = np.asarray(c, dtype=float)
        if self.c.ndim != 1:
            raise ValueError("c must be one-dimensional")
        n = self.c.shape[0]

        if (a_ub is None) != (b_ub is None):
            raise ValueError("a_ub and b_ub must be given together")
        if (a_eq is None) != (b_eq is None):
            raise ValueError("a_eq and b_eq must be given together")

        self.a_ub = None if a_ub is None else _as_matrix(a_ub)
        self.b_ub = None if b_ub is None else np.asarray(b_ub, dtype=float)
        self.a_eq = None if a_eq is None else _as_matrix(a_eq)
        self.b_eq = None if b_eq is None else np.asarray(b_eq, dtype=float)

        if self.a_ub is not None:
            if self.a_ub.ndim != 2 or self.a_ub.shape[1] != n:
                raise ValueError(f"a_ub must have {n} columns")
            if self.b_ub.shape != (self.a_ub.shape[0],):
                raise ValueError("b_ub length must match a_ub rows")
        if self.a_eq is not None:
            if self.a_eq.ndim != 2 or self.a_eq.shape[1] != n:
                raise ValueError(f"a_eq must have {n} columns")
            if self.b_eq.shape != (self.a_eq.shape[0],):
                raise ValueError("b_eq length must match a_eq rows")

        if upper_bounds is None:
            self.upper_bounds = np.full(n, np.inf)
        else:
            self.upper_bounds = np.asarray(upper_bounds, dtype=float)
            if self.upper_bounds.shape != (n,):
                raise ValueError(f"upper_bounds must have length {n}")
            if np.any(self.upper_bounds < 0):
                raise ValueError("upper bounds must be non-negative")

    @property
    def num_vars(self) -> int:
        """Number of decision variables."""
        return self.c.shape[0]

    @property
    def is_sparse(self) -> bool:
        """Whether any constraint block is a SciPy sparse container."""
        return sp.issparse(self.a_ub) or sp.issparse(self.a_eq)

    def objective(self, x: np.ndarray) -> float:
        """Evaluate :math:`c^T x`."""
        return float(self.c @ x)

    def residuals(self, x: np.ndarray) -> dict:
        """Constraint violations of ``x`` (all ≤ tol means feasible).

        Returns a dict with the maximum violation per constraint family.
        """
        out = {
            "lower": float(np.max(np.maximum(-x, 0.0), initial=0.0)),
            "upper": float(
                np.max(np.maximum(x - self.upper_bounds, 0.0), initial=0.0)
            ),
        }
        if self.a_ub is not None:
            out["ub"] = float(
                np.max(np.maximum(self.a_ub @ x - self.b_ub, 0.0), initial=0.0)
            )
        if self.a_eq is not None:
            out["eq"] = float(np.max(np.abs(self.a_eq @ x - self.b_eq), initial=0.0))
        return out

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Whether ``x`` satisfies every constraint within ``tol``."""
        return all(value <= tol for value in self.residuals(x).values())

    def to_standard_form(self) -> StandardFormLP:
        """Convert to equality standard form by adding slack variables.

        Column layout: original variables, then one slack per inequality
        row, then one slack per *finite* upper bound.
        """
        n = self.num_vars
        num_ub_rows = 0 if self.a_ub is None else self.a_ub.shape[0]
        finite_bounds = np.flatnonzero(np.isfinite(self.upper_bounds))
        num_bound_rows = finite_bounds.shape[0]
        num_eq_rows = 0 if self.a_eq is None else self.a_eq.shape[0]

        total_rows = num_ub_rows + num_bound_rows + num_eq_rows
        total_vars = n + num_ub_rows + num_bound_rows

        b = np.zeros(total_rows)
        c = np.zeros(total_vars)
        c[:n] = self.c

        if self.is_sparse:
            # Same layout as the dense branch, assembled as COO triplets.
            # Assembly only *places* coefficients (no summation), so the
            # resulting matrix is entry-for-entry equal to the dense one.
            rows_parts = []
            cols_parts = []
            data_parts = []
            row = 0
            if self.a_ub is not None:
                coo = sp.coo_array(self.a_ub)
                rows_parts.append(coo.row + row)
                cols_parts.append(coo.col)
                data_parts.append(coo.data)
                slack = np.arange(num_ub_rows)
                rows_parts.append(slack + row)
                cols_parts.append(slack + n)
                data_parts.append(np.ones(num_ub_rows))
                b[row : row + num_ub_rows] = self.b_ub
                row += num_ub_rows
            if num_bound_rows:
                bound_rows = np.arange(num_bound_rows)
                rows_parts.append(bound_rows + row)
                cols_parts.append(finite_bounds)
                data_parts.append(np.ones(num_bound_rows))
                rows_parts.append(bound_rows + row)
                cols_parts.append(bound_rows + n + num_ub_rows)
                data_parts.append(np.ones(num_bound_rows))
                b[row : row + num_bound_rows] = self.upper_bounds[finite_bounds]
                row += num_bound_rows
            if self.a_eq is not None:
                coo = sp.coo_array(self.a_eq)
                rows_parts.append(coo.row + row)
                cols_parts.append(coo.col)
                data_parts.append(coo.data)
                b[row : row + num_eq_rows] = self.b_eq
                row += num_eq_rows
            if rows_parts:
                coords = (
                    np.concatenate(rows_parts),
                    np.concatenate(cols_parts),
                )
                a = sp.csr_array(
                    sp.coo_array(
                        (np.concatenate(data_parts), coords),
                        shape=(total_rows, total_vars),
                    )
                )
            else:
                a = sp.csr_array((total_rows, total_vars), dtype=float)
            return StandardFormLP(c=c, a=a, b=b, num_original=n)

        a = np.zeros((total_rows, total_vars))

        row = 0
        if self.a_ub is not None:
            a[row : row + num_ub_rows, :n] = self.a_ub
            a[row : row + num_ub_rows, n : n + num_ub_rows] = np.eye(num_ub_rows)
            b[row : row + num_ub_rows] = self.b_ub
            row += num_ub_rows
        for offset, var in enumerate(finite_bounds):
            a[row, var] = 1.0
            a[row, n + num_ub_rows + offset] = 1.0
            b[row] = self.upper_bounds[var]
            row += 1
        if self.a_eq is not None:
            a[row : row + num_eq_rows, :n] = self.a_eq
            b[row : row + num_eq_rows] = self.b_eq
            row += num_eq_rows

        return StandardFormLP(c=c, a=a, b=b, num_original=n)
