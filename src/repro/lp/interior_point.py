"""Mehrotra predictor–corrector primal–dual interior-point LP solver.

LP-HTA's Step 1 calls for an interior-point solve of the relaxation P2 (the
paper cites Karmarkar [17]); this module implements the method that replaced
Karmarkar's projective algorithm in practice: the primal–dual path-following
scheme with Mehrotra's predictor–corrector (Mehrotra, SIAM J. Optim. 1992),
solving the normal equations :math:`A D A^T \\Delta y = r` with a dense
Cholesky factorisation per iteration — or, when the standard form carries a
SciPy sparse matrix, with a sparse LU factorisation (``splu``) of the same
regularised normal matrix.  The dense path is untouched and remains the
reference backend (``RunContext.lp_sparse=False``).

The solver works on :class:`~repro.lp.problem.StandardFormLP`
(min c·x, Ax = b, x ≥ 0) and is exposed through
:func:`~repro.lp.backends.solve` under the name ``"interior-point"``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp
from scipy.linalg import LinAlgError, cho_factor, cho_solve
from scipy.sparse.linalg import splu

from repro import perf
from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.warmstart import IPMIterate
from repro.obs.tracer import traced

__all__ = ["IPMOptions", "solve_interior_point", "solve_interior_point_batch"]

#: Floor applied to a warm-start iterate: a converged point sits on the
#: boundary of the positive orthant, which the path-following scheme
#: cannot start from, so clip it slightly inside.
_WARM_FLOOR = 1e-6

_BACKEND_NAME = "interior-point"


class _NumericalBreakdown(Exception):
    """Internal: a Newton system produced non-finite values."""


@dataclass(frozen=True)
class IPMOptions:
    """Tunables for the interior-point solver.

    :param tolerance: relative duality-gap / residual target.
    :param max_iterations: iteration cap before giving up.
    :param step_fraction: fraction of the max step to the boundary taken
        (the classic 0.9995 damping).
    :param divergence_threshold: treat the problem as infeasible/unbounded
        when iterates blow up beyond this magnitude.
    :param fallback_tolerance: accept the best iterate seen at this looser
        tolerance when the numerics break down before the strict target is
        met (near-degenerate vertices can push μ below machine precision
        between two iterations that each miss one criterion).
    :param stall_iterations: give up (``ITERATION_LIMIT``, with best-iterate
        salvage) when this many consecutive iterations fail to improve the
        best error seen — a divergent or cycling block then stops burning
        iterations long before ``max_iterations``.  Healthy Mehrotra runs
        improve almost every iteration, so the default is far outside their
        envelope.  ``0`` disables the guard.  Applied identically by the
        sequential and batched loops, preserving their bit-identity.
    :param max_wall_clock_s: wall-clock budget for one batched mega-solve;
        when exhausted every still-active block is parked with
        ``ITERATION_LIMIT`` (best-iterate salvage applies) so one
        pathological block cannot stall the whole batch.  ``inf`` (default)
        disables the budget; the sequential solver ignores it (wall-clock
        cutoffs are not deterministic, so the default ladder never uses
        one — it exists for explicitly budgeted callers).
    """

    tolerance: float = 1e-9
    max_iterations: int = 200
    step_fraction: float = 0.9995
    divergence_threshold: float = 1e14
    fallback_tolerance: float = 1e-6
    stall_iterations: int = 60
    max_wall_clock_s: float = float("inf")


def _initial_point(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mehrotra's heuristic starting point (strictly positive x, s)."""
    m = a.shape[0]
    gram = a @ a.T + 1e-10 * np.eye(m)
    try:
        factor = cho_factor(gram)
        x = a.T @ cho_solve(factor, b)
        y = cho_solve(factor, a @ c)
    except (LinAlgError, ValueError):
        x, *_ = np.linalg.lstsq(a, b, rcond=None)
        y, *_ = np.linalg.lstsq(a.T, c, rcond=None)
    s = c - a.T @ y
    return _mehrotra_shift(x, y, s)


def _initial_point_sparse(
    a: "sp.csr_array", b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mehrotra's starting point computed with a sparse LU of the Gram
    matrix; falls back to dense least squares if the factorisation fails."""
    m = a.shape[0]
    gram = (a @ a.T).tocsc() + 1e-10 * sp.eye_array(m, format="csc")
    try:
        factor = splu(gram.tocsc())
        x = a.T @ factor.solve(b)
        y = factor.solve(a @ c)
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            raise RuntimeError("non-finite Gram solve")
    except (RuntimeError, ValueError):
        dense = a.toarray()
        x, *_ = np.linalg.lstsq(dense, b, rcond=None)
        y, *_ = np.linalg.lstsq(dense.T, c, rcond=None)
    s = c - a.T @ y
    return _mehrotra_shift(x, y, s)


def _mehrotra_shift(
    x: np.ndarray, y: np.ndarray, s: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shift (x, s) strictly inside the positive orthant (Mehrotra's rule)."""
    delta_x = max(-1.5 * float(np.min(x, initial=0.0)), 0.0)
    delta_s = max(-1.5 * float(np.min(s, initial=0.0)), 0.0)
    x = x + delta_x
    s = s + delta_s

    dot = float(x @ s)
    if dot <= 0:
        x = np.maximum(x, 1.0)
        s = np.maximum(s, 1.0)
        dot = float(x @ s)
    sum_x = float(np.sum(x))
    sum_s = float(np.sum(s))
    x = x + 0.5 * dot / max(sum_s, 1e-12)
    s = s + 0.5 * dot / max(sum_x, 1e-12)
    return x, y, s


def _max_step(values: np.ndarray, directions: np.ndarray) -> float:
    """Largest α ∈ (0, 1] keeping ``values + α·directions`` non-negative."""
    negative = directions < 0
    if not np.any(negative):
        return 1.0
    ratios = -values[negative] / directions[negative]
    return float(min(1.0, np.min(ratios)))


def _warm_point(
    warm_start: IPMIterate, m: int, n: int
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """A usable (x, y, s) from a previous iterate, or ``None``."""
    x = np.asarray(warm_start.x, dtype=float)
    y = np.asarray(warm_start.y, dtype=float)
    s = np.asarray(warm_start.s, dtype=float)
    if x.shape != (n,) or y.shape != (m,) or s.shape != (n,):
        return None
    if not (
        np.all(np.isfinite(x)) and np.all(np.isfinite(y)) and np.all(np.isfinite(s))
    ):
        return None
    return np.maximum(x, _WARM_FLOOR), y.copy(), np.maximum(s, _WARM_FLOOR)


def _solve_standard_form(
    lp: StandardFormLP,
    options: IPMOptions,
    warm_start: Optional[IPMIterate] = None,
) -> LPResult:
    """Run the predictor–corrector loop on a standard-form LP."""
    a, b, c = lp.a, lp.b, lp.c
    m, n = a.shape
    sparse = sp.issparse(a)
    if sparse:
        a = sp.csr_array(a, dtype=float)

    if n == 0:
        feasible = bool(np.allclose(b, 0.0))
        return LPResult(
            status=LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE,
            x=np.zeros(0) if feasible else None,
            objective=0.0,
            iterations=0,
            backend=_BACKEND_NAME,
        )
    if m == 0:
        # No constraints: minimum of c·x over x ≥ 0.
        if np.any(c < 0):
            return LPResult(LPStatus.UNBOUNDED, None, -np.inf, 0, _BACKEND_NAME)
        return LPResult(LPStatus.OPTIMAL, np.zeros(n), 0.0, 0, _BACKEND_NAME)

    start = None
    if isinstance(warm_start, IPMIterate):
        start = _warm_point(warm_start, m, n)
    warmed = start is not None
    if warmed:
        x, y, s = start
    elif sparse:
        x, y, s = _initial_point_sparse(a, b, c)
    else:
        x, y, s = _initial_point(a, b, c)
    norm_b = 1.0 + float(np.linalg.norm(b))
    norm_c = 1.0 + float(np.linalg.norm(c))

    best_err = float("inf")
    best: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
    last_improve = 0

    def salvage(failure: LPResult) -> LPResult:
        """Return the best iterate when it already met the loose target.

        Pushing μ toward machine precision can blow up the Newton system
        one iteration *after* an essentially-optimal point; losing that
        point to a NUMERICAL_ERROR would misreport a solved problem.
        """
        if best is not None and best_err < options.fallback_tolerance:
            bx, by, bs = best
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=bx,
                objective=float(c @ bx),
                iterations=failure.iterations,
                backend=_BACKEND_NAME,
                message="converged at reduced tolerance",
                warm_start=IPMIterate(x=bx.copy(), y=by.copy(), s=bs.copy()),
            )
        return failure

    for iteration in range(1, options.max_iterations + 1):
        r_primal = a @ x - b
        r_dual = a.T @ y + s - c
        mu = float(x @ s) / n

        primal_err = float(np.linalg.norm(r_primal)) / norm_b
        dual_err = float(np.linalg.norm(r_dual)) / norm_c
        gap = abs(float(c @ x) - float(b @ y)) / (1.0 + abs(float(c @ x)))

        err = max(primal_err, dual_err, gap)
        if err < best_err:
            best_err = err
            best = (x.copy(), y.copy(), s.copy())
            last_improve = iteration
        if err < options.tolerance:
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=x,
                objective=float(c @ x),
                iterations=iteration - 1,
                backend=_BACKEND_NAME,
                message="warm-started" if warmed else "",
                warm_start=IPMIterate(x=x.copy(), y=y.copy(), s=s.copy()),
            )
        if (
            float(np.max(np.abs(x))) > options.divergence_threshold
            or float(np.max(np.abs(y))) > options.divergence_threshold
        ):
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="iterates diverged (problem may be infeasible or unbounded)",
            ))
        if (
            options.stall_iterations > 0
            and iteration - last_improve >= options.stall_iterations
        ):
            return salvage(LPResult(
                status=LPStatus.ITERATION_LIMIT,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message=(
                    f"stalled: no progress in {options.stall_iterations}"
                    " iterations"
                ),
            ))

        # Diagonal of X S^{-1}, clipped: near a vertex some s_i underflows
        # and the raw ratio overflows, poisoning the normal matrix.
        with np.errstate(over="ignore", divide="ignore"):
            d = np.clip(x / np.maximum(s, 1e-300), 1e-12, 1e12)
        if sparse:
            normal = (a.multiply(d) @ a.T).tocsc()
            if not np.all(np.isfinite(normal.data)):
                return salvage(LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="non-finite normal equations",
                ))
            # Same Tikhonov regularisation as the dense path, applied via a
            # sparse identity so the pattern stays factorisable.
            reg = 1e-12 * (1.0 + float(normal.diagonal().sum()) / m)
            eye = sp.eye_array(m, format="csc")
            try:
                factor = splu((normal + reg * eye).tocsc())
                solve_normal = factor.solve
            except (RuntimeError, ValueError):
                try:
                    factor = splu((normal + (reg + 1e-6) * eye).tocsc())
                    solve_normal = factor.solve
                except (RuntimeError, ValueError):
                    return salvage(LPResult(
                        status=LPStatus.NUMERICAL_ERROR,
                        x=None,
                        objective=float("nan"),
                        iterations=iteration,
                        backend=_BACKEND_NAME,
                        message="normal equations not positive definite",
                    ))
        else:
            normal = (a * d) @ a.T
            if not np.all(np.isfinite(normal)):
                return salvage(LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="non-finite normal equations",
                ))
            normal[np.diag_indices_from(normal)] += 1e-12 * (1.0 + np.trace(normal) / m)
            try:
                factor = cho_factor(normal)
            except (LinAlgError, ValueError):
                normal[np.diag_indices_from(normal)] += 1e-6
                try:
                    factor = cho_factor(normal)
                except (LinAlgError, ValueError):
                    return salvage(LPResult(
                        status=LPStatus.NUMERICAL_ERROR,
                        x=None,
                        objective=float("nan"),
                        iterations=iteration,
                        backend=_BACKEND_NAME,
                        message="normal equations not positive definite",
                    ))
            solve_normal = lambda rhs, _f=factor: cho_solve(_f, rhs)  # noqa: E731

        def newton_direction(rxs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Solve the KKT system for a given complementarity residual.

            Raises :class:`_NumericalBreakdown` if the system degenerates
            (tiny s with large residuals — the signature of an infeasible
            or unbounded instance pushed past the numerics).
            """
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                s_safe = np.maximum(s, 1e-300)
                x_safe = np.maximum(x, 1e-300)
                rhs = -r_primal - a @ (d * r_dual) + a @ (rxs / s_safe)
                if not np.all(np.isfinite(rhs)):
                    raise _NumericalBreakdown
                dy = solve_normal(rhs)
                if not np.all(np.isfinite(dy)):
                    raise _NumericalBreakdown
                dx = d * (a.T @ dy + r_dual) - rxs / s_safe
                ds = -(rxs + s * dx) / x_safe
            if not (np.all(np.isfinite(dx)) and np.all(np.isfinite(ds))):
                raise _NumericalBreakdown
            return dx, dy, ds

        try:
            # Predictor (affine-scaling) direction.
            dx_aff, dy_aff, ds_aff = newton_direction(x * s)
            alpha_p_aff = _max_step(x, dx_aff)
            alpha_d_aff = _max_step(s, ds_aff)
            mu_aff = float(
                (x + alpha_p_aff * dx_aff) @ (s + alpha_d_aff * ds_aff)
            ) / n
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

            # Corrector direction with centering.
            rxs = x * s + dx_aff * ds_aff - sigma * mu
            dx, dy, ds = newton_direction(rxs)
        except _NumericalBreakdown:
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="Newton system degenerated (likely infeasible/unbounded)",
            ))

        alpha_p = options.step_fraction * _max_step(x, dx)
        alpha_d = options.step_fraction * _max_step(s, ds)
        x = x + alpha_p * dx
        y = y + alpha_d * dy
        s = s + alpha_d * ds

        if np.any(x <= 0) or np.any(s <= 0):
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="iterate left the positive orthant",
            ))

    return salvage(LPResult(
        status=LPStatus.ITERATION_LIMIT,
        x=None,
        objective=float("nan"),
        iterations=options.max_iterations,
        backend=_BACKEND_NAME,
        message="no convergence within the iteration cap",
    ))


class _IPMBlock:
    """Per-block bookkeeping for :func:`solve_interior_point_batch`."""

    __slots__ = (
        "idx", "a", "b", "c", "n", "m", "ns", "ms", "sparse",
        "norm_b", "norm_c", "best_err", "best", "last_improve",
        "solve_normal",
    )


def _solve_standard_form_batch(
    blocks: Sequence[StandardFormLP], options: IPMOptions
) -> List[LPResult]:
    """Lockstep Mehrotra loop over many independent standard-form LPs.

    The per-iteration elementwise work (scaling diagonal, direction
    formulas, updates) runs on the concatenated state vectors; the pieces
    that must not mix across blocks — constraint matvecs, the normal
    equations (one ``splu``/Cholesky factorisation *per block*), residual
    norms, step-length ratio tests and convergence decisions — run on each
    block's contiguous slice, exactly as :func:`_solve_standard_form`
    would.  Per-block convergence masking: a converged, diverged, or
    numerically broken block is frozen (its result recorded with its own
    iteration count, its state slices reset to benign constants) while the
    stragglers keep iterating; each block keeps its own best-iterate
    salvage exactly like the sequential solver.
    """
    num = len(blocks)
    results: List[Optional[LPResult]] = [None] * num

    info: List[_IPMBlock] = []
    n_off = [0]
    m_off = [0]
    for idx, lp in enumerate(blocks):
        a, b, c = lp.a, lp.b, lp.c
        m, n = a.shape
        if n == 0:
            feasible = bool(np.allclose(b, 0.0))
            results[idx] = LPResult(
                status=LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE,
                x=np.zeros(0) if feasible else None,
                objective=0.0,
                iterations=0,
                backend=_BACKEND_NAME,
            )
            continue
        if m == 0:
            if np.any(c < 0):
                results[idx] = LPResult(
                    LPStatus.UNBOUNDED, None, -np.inf, 0, _BACKEND_NAME
                )
            else:
                results[idx] = LPResult(
                    LPStatus.OPTIMAL, np.zeros(n), 0.0, 0, _BACKEND_NAME
                )
            continue
        blk = _IPMBlock()
        blk.idx = idx
        blk.sparse = sp.issparse(a)
        blk.a = sp.csr_array(a, dtype=float) if blk.sparse else a
        blk.b = b
        blk.c = c
        blk.n = n
        blk.m = m
        blk.ns = slice(n_off[-1], n_off[-1] + n)
        blk.ms = slice(m_off[-1], m_off[-1] + m)
        n_off.append(n_off[-1] + n)
        m_off.append(m_off[-1] + m)
        blk.norm_b = 1.0 + float(np.linalg.norm(b))
        blk.norm_c = 1.0 + float(np.linalg.norm(c))
        blk.best_err = float("inf")
        blk.best = None
        blk.last_improve = 0
        blk.solve_normal = None
        info.append(blk)

    n_tot = n_off[-1]
    m_tot = m_off[-1]
    n_sizes = np.array([blk.n for blk in info], dtype=np.intp)
    m_sizes = np.array([blk.m for blk in info], dtype=np.intp)

    c_cat = np.zeros(n_tot)
    b_cat = np.zeros(m_tot)
    x = np.ones(n_tot)
    y = np.zeros(m_tot)
    s = np.ones(n_tot)
    for blk in info:
        c_cat[blk.ns] = blk.c
        b_cat[blk.ms] = blk.b
        if blk.sparse:
            xb, yb, sb = _initial_point_sparse(blk.a, blk.b, blk.c)
        else:
            xb, yb, sb = _initial_point(blk.a, blk.b, blk.c)
        x[blk.ns] = xb
        y[blk.ms] = yb
        s[blk.ns] = sb

    # Per-block matvec landing buffers: active slices are refilled every
    # use, frozen slices zeroed at freeze time.
    ax = np.zeros(m_tot)
    aty = np.zeros(n_tot)
    m1 = np.zeros(m_tot)
    m2 = np.zeros(m_tot)
    dy = np.zeros(m_tot)
    atdy = np.zeros(n_tot)

    ap_blocks = np.zeros(len(info))
    ad_blocks = np.zeros(len(info))
    sm_blocks = np.zeros(len(info))

    active = list(info)
    # Position of each block in the original `info` order, for the repeat
    # expansion arrays (frozen entries stay 0).
    pos = {blk.idx: i for i, blk in enumerate(info)}

    def salvage(blk: _IPMBlock, failure: LPResult) -> LPResult:
        if blk.best is not None and blk.best_err < options.fallback_tolerance:
            bx, by, bs = blk.best
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=bx,
                objective=float(blk.c @ bx),
                iterations=failure.iterations,
                backend=_BACKEND_NAME,
                message="converged at reduced tolerance",
                warm_start=IPMIterate(x=bx.copy(), y=by.copy(), s=bs.copy()),
            )
        return failure

    def freeze(blk: _IPMBlock, result: LPResult) -> None:
        results[blk.idx] = result
        ns, ms = blk.ns, blk.ms
        x[ns] = 1.0
        s[ns] = 1.0
        y[ms] = 0.0
        ax[ms] = 0.0
        aty[ns] = 0.0
        m1[ms] = 0.0
        m2[ms] = 0.0
        dy[ms] = 0.0
        atdy[ns] = 0.0
        p = pos[blk.idx]
        ap_blocks[p] = 0.0
        ad_blocks[p] = 0.0
        sm_blocks[p] = 0.0
        blk.solve_normal = None
        blk.best = None

    def numerical(message: str, iteration: int) -> LPResult:
        return LPResult(
            status=LPStatus.NUMERICAL_ERROR,
            x=None,
            objective=float("nan"),
            iterations=iteration,
            backend=_BACKEND_NAME,
            message=message,
        )

    deadline = (
        time.perf_counter() + options.max_wall_clock_s
        if np.isfinite(options.max_wall_clock_s)
        else None
    )

    for iteration in range(1, options.max_iterations + 1):
        if not active:
            break
        if deadline is not None and time.perf_counter() > deadline:
            # Budget exhausted: park every straggler with its best iterate
            # rather than letting one pathological block hold the batch.
            for blk in active:
                freeze(
                    blk,
                    salvage(
                        blk,
                        LPResult(
                            status=LPStatus.ITERATION_LIMIT,
                            x=None,
                            objective=float("nan"),
                            iterations=iteration - 1,
                            backend=_BACKEND_NAME,
                            message="wall-clock budget exhausted",
                        ),
                    ),
                )
            active = []
            break
        for blk in active:
            ax[blk.ms] = blk.a @ x[blk.ns]
            aty[blk.ns] = blk.a.T @ y[blk.ms]
        r_primal = ax - b_cat
        r_dual = aty + s - c_cat

        still = []
        for blk in active:
            ns, ms = blk.ns, blk.ms
            xb, sb, yb = x[ns], s[ns], y[ms]
            mu_b = float(xb @ sb) / blk.n
            rp = r_primal[ms]
            rd = r_dual[ns]
            primal_err = float(np.linalg.norm(rp)) / blk.norm_b
            dual_err = float(np.linalg.norm(rd)) / blk.norm_c
            cx = float(blk.c @ xb)
            gap = abs(cx - float(blk.b @ yb)) / (1.0 + abs(cx))
            err = max(primal_err, dual_err, gap)
            if err < blk.best_err:
                blk.best_err = err
                blk.best = (xb.copy(), yb.copy(), sb.copy())
                blk.last_improve = iteration
            if err < options.tolerance:
                solution = xb.copy()
                freeze(
                    blk,
                    LPResult(
                        status=LPStatus.OPTIMAL,
                        x=solution,
                        objective=cx,
                        iterations=iteration - 1,
                        backend=_BACKEND_NAME,
                        warm_start=IPMIterate(
                            x=solution.copy(), y=yb.copy(), s=sb.copy()
                        ),
                    ),
                )
            elif (
                float(np.max(np.abs(xb))) > options.divergence_threshold
                or float(np.max(np.abs(yb), initial=0.0))
                > options.divergence_threshold
            ):
                freeze(
                    blk,
                    salvage(
                        blk,
                        numerical(
                            "iterates diverged (problem may be infeasible"
                            " or unbounded)",
                            iteration,
                        ),
                    ),
                )
            elif (
                options.stall_iterations > 0
                and iteration - blk.last_improve >= options.stall_iterations
            ):
                # Same guard (and salvage) as the sequential loop: a block
                # making no progress is parked so it cannot pin the batch
                # to the full iteration cap.
                freeze(
                    blk,
                    salvage(
                        blk,
                        LPResult(
                            status=LPStatus.ITERATION_LIMIT,
                            x=None,
                            objective=float("nan"),
                            iterations=iteration,
                            backend=_BACKEND_NAME,
                            message=(
                                "stalled: no progress in"
                                f" {options.stall_iterations} iterations"
                            ),
                        ),
                    ),
                )
            else:
                still.append(blk)
        active = still
        if not active:
            break

        with np.errstate(over="ignore", divide="ignore"):
            d = np.clip(x / np.maximum(s, 1e-300), 1e-12, 1e12)

        # Per-block normal-equation factorisation (splu when sparse,
        # Cholesky otherwise), with the sequential path's regularisation
        # and retry semantics; failures freeze just that block.
        still = []
        for blk in active:
            factor_solve = _factorise_block(blk, d[blk.ns])
            if factor_solve is None:
                freeze(
                    blk,
                    salvage(
                        blk,
                        numerical(
                            "normal equations not positive definite"
                            if blk.solve_normal != "nonfinite"
                            else "non-finite normal equations",
                            iteration,
                        ),
                    ),
                )
            else:
                blk.solve_normal = factor_solve
                still.append(blk)
        active = still
        if not active:
            continue

        def newton(rxs: np.ndarray, act: List[_IPMBlock]):
            """Lockstep KKT solve; returns directions plus failed blocks."""
            failed = []
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                s_safe = np.maximum(s, 1e-300)
                x_safe = np.maximum(x, 1e-300)
                t1 = d * r_dual
                t2 = rxs / s_safe
                for blk in act:
                    m1[blk.ms] = blk.a @ t1[blk.ns]
                    m2[blk.ms] = blk.a @ t2[blk.ns]
                rhs = -r_primal - m1 + m2
                for blk in act:
                    rb = rhs[blk.ms]
                    if not np.all(np.isfinite(rb)):
                        failed.append(blk)
                        dy[blk.ms] = 0.0
                        continue
                    dyb = blk.solve_normal(rb)
                    if not np.all(np.isfinite(dyb)):
                        failed.append(blk)
                        dy[blk.ms] = 0.0
                        continue
                    dy[blk.ms] = dyb
                    atdy[blk.ns] = blk.a.T @ dyb
                dx = d * (atdy + r_dual) - t2
                ds = -(rxs + s * dx) / x_safe
            failed_set = set(id(blk) for blk in failed)
            for blk in act:
                if id(blk) in failed_set:
                    continue
                if not (
                    np.all(np.isfinite(dx[blk.ns]))
                    and np.all(np.isfinite(ds[blk.ns]))
                ):
                    failed.append(blk)
            return dx, ds, failed

        def drop_failed(
            failed: List[_IPMBlock],
            act: List[_IPMBlock],
            arrays: Tuple[np.ndarray, ...],
        ) -> List[_IPMBlock]:
            """Freeze broken blocks and sanitise their (variable-length)
            direction slices so the global elementwise passes stay finite."""
            if not failed:
                return act
            failed_ids = set(id(blk) for blk in failed)
            for blk in failed:
                freeze(
                    blk,
                    salvage(
                        blk,
                        numerical(
                            "Newton system degenerated (likely"
                            " infeasible/unbounded)",
                            iteration,
                        ),
                    ),
                )
                for arr in arrays:
                    arr[blk.ns] = 0.0
            return [blk for blk in act if id(blk) not in failed_ids]

        # Predictor (affine-scaling) direction.
        rxs_aff = x * s
        dx_a, ds_a, failed = newton(rxs_aff, active)
        active = drop_failed(failed, active, (dx_a, ds_a, rxs_aff))
        if not active:
            continue

        for blk in active:
            ns = blk.ns
            ap_aff = _max_step(x[ns], dx_a[ns])
            ad_aff = _max_step(s[ns], ds_a[ns])
            mu_b = float(x[ns] @ s[ns]) / blk.n
            mu_aff = (
                float((x[ns] + ap_aff * dx_a[ns]) @ (s[ns] + ad_aff * ds_a[ns]))
                / blk.n
            )
            sigma = (mu_aff / mu_b) ** 3 if mu_b > 0 else 0.0
            sm_blocks[pos[blk.idx]] = sigma * mu_b

        # Corrector direction with centering.
        sm_v = np.repeat(sm_blocks, n_sizes)
        rxs = x * s + dx_a * ds_a - sm_v
        dx, ds, failed = newton(rxs, active)
        active = drop_failed(failed, active, (dx, ds))
        if not active:
            continue

        for blk in active:
            p = pos[blk.idx]
            ap_blocks[p] = options.step_fraction * _max_step(
                x[blk.ns], dx[blk.ns]
            )
            ad_blocks[p] = options.step_fraction * _max_step(
                s[blk.ns], ds[blk.ns]
            )
        ap_v = np.repeat(ap_blocks, n_sizes)
        ad_v = np.repeat(ad_blocks, n_sizes)
        ad_m = np.repeat(ad_blocks, m_sizes)
        x = x + ap_v * dx
        y = y + ad_m * dy
        s = s + ad_v * ds

        still = []
        for blk in active:
            ns = blk.ns
            if np.any(x[ns] <= 0) or np.any(s[ns] <= 0):
                freeze(
                    blk,
                    salvage(
                        blk,
                        numerical("iterate left the positive orthant", iteration),
                    ),
                )
            else:
                still.append(blk)
        active = still

    for blk in active:
        results[blk.idx] = salvage(
            blk,
            LPResult(
                status=LPStatus.ITERATION_LIMIT,
                x=None,
                objective=float("nan"),
                iterations=options.max_iterations,
                backend=_BACKEND_NAME,
                message="no convergence within the iteration cap",
            ),
        )
    return results  # type: ignore[return-value]


def _factorise_block(
    blk: _IPMBlock, d_b: np.ndarray
) -> Optional[Callable[[np.ndarray], np.ndarray]]:
    """Factorise one block's regularised normal equations.

    Mirrors the sequential solver's sparse/dense branches (same
    regularisation, same one-shot retry); returns the solve callable or
    ``None`` on failure.  Marks ``blk.solve_normal = "nonfinite"`` when
    the failure was a non-finite normal matrix, so the caller can report
    the sequential solver's message for that case.
    """
    a = blk.a
    m = blk.m
    if blk.sparse:
        normal = (a.multiply(d_b) @ a.T).tocsc()
        if not np.all(np.isfinite(normal.data)):
            blk.solve_normal = "nonfinite"
            return None
        reg = 1e-12 * (1.0 + float(normal.diagonal().sum()) / m)
        eye = sp.eye_array(m, format="csc")
        try:
            return splu((normal + reg * eye).tocsc()).solve
        except (RuntimeError, ValueError):
            try:
                return splu((normal + (reg + 1e-6) * eye).tocsc()).solve
            except (RuntimeError, ValueError):
                return None
    normal = (a * d_b) @ a.T
    if not np.all(np.isfinite(normal)):
        blk.solve_normal = "nonfinite"
        return None
    normal[np.diag_indices_from(normal)] += 1e-12 * (1.0 + np.trace(normal) / m)
    try:
        factor = cho_factor(normal)
    except (LinAlgError, ValueError):
        normal[np.diag_indices_from(normal)] += 1e-6
        try:
            factor = cho_factor(normal)
        except (LinAlgError, ValueError):
            return None
    return lambda rhs, _f=factor: cho_solve(_f, rhs)


def solve_interior_point_batch(
    problems: Union[Sequence[Union[LinearProgram, StandardFormLP]], object],
    options: IPMOptions = IPMOptions(),
) -> List[LPResult]:
    """Solve many independent LPs in lockstep with per-block masking.

    Accepts a sequence of :class:`LinearProgram`/:class:`StandardFormLP`
    instances or a ``BatchedProblem`` from
    :mod:`repro.core.lp_builder` (recognised structurally via its
    ``problems``/``standard`` attributes, keeping this module free of a
    ``core`` dependency).  Bounded-variable programs are converted to
    standard form and their solutions projected back, exactly like
    :func:`solve_interior_point`.  In reference mode the batch degrades to
    a sequential per-problem loop so differential baselines never see the
    batched path.

    :param problems: the LPs to solve (ragged sizes and a batch of one are
        fine).
    :param options: shared solver tunables.
    :returns: one :class:`LPResult` per input, in input order.
    """
    standard_attr = getattr(problems, "standard", None)
    if standard_attr is not None:
        originals: List[Optional[LinearProgram]] = list(
            getattr(problems, "problems")
        )
        standards: List[StandardFormLP] = list(standard_attr)
    else:
        originals = []
        standards = []
        for problem in problems:  # type: ignore[union-attr]
            if isinstance(problem, LinearProgram):
                originals.append(problem)
                standards.append(problem.to_standard_form())
            else:
                originals.append(None)
                standards.append(problem)
    if not standards:
        return []
    if perf.reference_mode():
        return [
            solve_interior_point(
                original if original is not None else standard, options
            )
            for original, standard in zip(originals, standards)
        ]
    raw = _solve_standard_form_batch(standards, options)
    out: List[LPResult] = []
    for original, standard, result in zip(originals, standards, raw):
        if original is not None and result.status.ok:
            x = standard.extract_original(result.x)
            out.append(
                LPResult(
                    status=result.status,
                    x=x,
                    objective=original.objective(x),
                    iterations=result.iterations,
                    backend=result.backend,
                    message=result.message,
                    warm_start=result.warm_start,
                )
            )
        else:
            out.append(result)
    return out


@traced("lp.interior_point")
def solve_interior_point(
    problem: Union[LinearProgram, StandardFormLP],
    options: IPMOptions = IPMOptions(),
    warm_start: Optional[IPMIterate] = None,
) -> LPResult:
    """Solve an LP with the Mehrotra predictor–corrector method.

    Accepts either a bounded-variable :class:`LinearProgram` (converted to
    standard form internally; the returned ``x`` is in the original variable
    space) or a :class:`StandardFormLP`.

    :param problem: the LP to solve.
    :param options: solver tunables.
    :param warm_start: optional converged iterate from a previous solve of
        a similar problem; ignored when its shapes do not match.
    """
    if isinstance(problem, LinearProgram):
        standard = problem.to_standard_form()
        result = _solve_standard_form(standard, options, warm_start=warm_start)
        if result.status.ok:
            x = standard.extract_original(result.x)
            return LPResult(
                status=result.status,
                x=x,
                objective=problem.objective(x),
                iterations=result.iterations,
                backend=result.backend,
                message=result.message,
                warm_start=result.warm_start,
            )
        return result
    return _solve_standard_form(problem, options, warm_start=warm_start)
