"""Mehrotra predictor–corrector primal–dual interior-point LP solver.

LP-HTA's Step 1 calls for an interior-point solve of the relaxation P2 (the
paper cites Karmarkar [17]); this module implements the method that replaced
Karmarkar's projective algorithm in practice: the primal–dual path-following
scheme with Mehrotra's predictor–corrector (Mehrotra, SIAM J. Optim. 1992),
solving the normal equations :math:`A D A^T \\Delta y = r` with a dense
Cholesky factorisation per iteration — or, when the standard form carries a
SciPy sparse matrix, with a sparse LU factorisation (``splu``) of the same
regularised normal matrix.  The dense path is untouched and remains the
reference backend (``RunContext.lp_sparse=False``).

The solver works on :class:`~repro.lp.problem.StandardFormLP`
(min c·x, Ax = b, x ≥ 0) and is exposed through
:func:`~repro.lp.backends.solve` under the name ``"interior-point"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp
from scipy.linalg import LinAlgError, cho_factor, cho_solve
from scipy.sparse.linalg import splu

from repro.lp.problem import LinearProgram, StandardFormLP
from repro.lp.result import LPResult, LPStatus
from repro.lp.warmstart import IPMIterate
from repro.obs.tracer import traced

__all__ = ["IPMOptions", "solve_interior_point"]

#: Floor applied to a warm-start iterate: a converged point sits on the
#: boundary of the positive orthant, which the path-following scheme
#: cannot start from, so clip it slightly inside.
_WARM_FLOOR = 1e-6

_BACKEND_NAME = "interior-point"


class _NumericalBreakdown(Exception):
    """Internal: a Newton system produced non-finite values."""


@dataclass(frozen=True)
class IPMOptions:
    """Tunables for the interior-point solver.

    :param tolerance: relative duality-gap / residual target.
    :param max_iterations: iteration cap before giving up.
    :param step_fraction: fraction of the max step to the boundary taken
        (the classic 0.9995 damping).
    :param divergence_threshold: treat the problem as infeasible/unbounded
        when iterates blow up beyond this magnitude.
    :param fallback_tolerance: accept the best iterate seen at this looser
        tolerance when the numerics break down before the strict target is
        met (near-degenerate vertices can push μ below machine precision
        between two iterations that each miss one criterion).
    """

    tolerance: float = 1e-9
    max_iterations: int = 200
    step_fraction: float = 0.9995
    divergence_threshold: float = 1e14
    fallback_tolerance: float = 1e-6


def _initial_point(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mehrotra's heuristic starting point (strictly positive x, s)."""
    m = a.shape[0]
    gram = a @ a.T + 1e-10 * np.eye(m)
    try:
        factor = cho_factor(gram)
        x = a.T @ cho_solve(factor, b)
        y = cho_solve(factor, a @ c)
    except (LinAlgError, ValueError):
        x, *_ = np.linalg.lstsq(a, b, rcond=None)
        y, *_ = np.linalg.lstsq(a.T, c, rcond=None)
    s = c - a.T @ y
    return _mehrotra_shift(x, y, s)


def _initial_point_sparse(
    a: "sp.csr_array", b: np.ndarray, c: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Mehrotra's starting point computed with a sparse LU of the Gram
    matrix; falls back to dense least squares if the factorisation fails."""
    m = a.shape[0]
    gram = (a @ a.T).tocsc() + 1e-10 * sp.eye_array(m, format="csc")
    try:
        factor = splu(gram.tocsc())
        x = a.T @ factor.solve(b)
        y = factor.solve(a @ c)
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            raise RuntimeError("non-finite Gram solve")
    except (RuntimeError, ValueError):
        dense = a.toarray()
        x, *_ = np.linalg.lstsq(dense, b, rcond=None)
        y, *_ = np.linalg.lstsq(dense.T, c, rcond=None)
    s = c - a.T @ y
    return _mehrotra_shift(x, y, s)


def _mehrotra_shift(
    x: np.ndarray, y: np.ndarray, s: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shift (x, s) strictly inside the positive orthant (Mehrotra's rule)."""
    delta_x = max(-1.5 * float(np.min(x, initial=0.0)), 0.0)
    delta_s = max(-1.5 * float(np.min(s, initial=0.0)), 0.0)
    x = x + delta_x
    s = s + delta_s

    dot = float(x @ s)
    if dot <= 0:
        x = np.maximum(x, 1.0)
        s = np.maximum(s, 1.0)
        dot = float(x @ s)
    sum_x = float(np.sum(x))
    sum_s = float(np.sum(s))
    x = x + 0.5 * dot / max(sum_s, 1e-12)
    s = s + 0.5 * dot / max(sum_x, 1e-12)
    return x, y, s


def _max_step(values: np.ndarray, directions: np.ndarray) -> float:
    """Largest α ∈ (0, 1] keeping ``values + α·directions`` non-negative."""
    negative = directions < 0
    if not np.any(negative):
        return 1.0
    ratios = -values[negative] / directions[negative]
    return float(min(1.0, np.min(ratios)))


def _warm_point(
    warm_start: IPMIterate, m: int, n: int
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """A usable (x, y, s) from a previous iterate, or ``None``."""
    x = np.asarray(warm_start.x, dtype=float)
    y = np.asarray(warm_start.y, dtype=float)
    s = np.asarray(warm_start.s, dtype=float)
    if x.shape != (n,) or y.shape != (m,) or s.shape != (n,):
        return None
    if not (
        np.all(np.isfinite(x)) and np.all(np.isfinite(y)) and np.all(np.isfinite(s))
    ):
        return None
    return np.maximum(x, _WARM_FLOOR), y.copy(), np.maximum(s, _WARM_FLOOR)


def _solve_standard_form(
    lp: StandardFormLP,
    options: IPMOptions,
    warm_start: Optional[IPMIterate] = None,
) -> LPResult:
    """Run the predictor–corrector loop on a standard-form LP."""
    a, b, c = lp.a, lp.b, lp.c
    m, n = a.shape
    sparse = sp.issparse(a)
    if sparse:
        a = sp.csr_array(a, dtype=float)

    if n == 0:
        feasible = bool(np.allclose(b, 0.0))
        return LPResult(
            status=LPStatus.OPTIMAL if feasible else LPStatus.INFEASIBLE,
            x=np.zeros(0) if feasible else None,
            objective=0.0,
            iterations=0,
            backend=_BACKEND_NAME,
        )
    if m == 0:
        # No constraints: minimum of c·x over x ≥ 0.
        if np.any(c < 0):
            return LPResult(LPStatus.UNBOUNDED, None, -np.inf, 0, _BACKEND_NAME)
        return LPResult(LPStatus.OPTIMAL, np.zeros(n), 0.0, 0, _BACKEND_NAME)

    start = None
    if isinstance(warm_start, IPMIterate):
        start = _warm_point(warm_start, m, n)
    warmed = start is not None
    if warmed:
        x, y, s = start
    elif sparse:
        x, y, s = _initial_point_sparse(a, b, c)
    else:
        x, y, s = _initial_point(a, b, c)
    norm_b = 1.0 + float(np.linalg.norm(b))
    norm_c = 1.0 + float(np.linalg.norm(c))

    best_err = float("inf")
    best: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def salvage(failure: LPResult) -> LPResult:
        """Return the best iterate when it already met the loose target.

        Pushing μ toward machine precision can blow up the Newton system
        one iteration *after* an essentially-optimal point; losing that
        point to a NUMERICAL_ERROR would misreport a solved problem.
        """
        if best is not None and best_err < options.fallback_tolerance:
            bx, by, bs = best
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=bx,
                objective=float(c @ bx),
                iterations=failure.iterations,
                backend=_BACKEND_NAME,
                message="converged at reduced tolerance",
                warm_start=IPMIterate(x=bx.copy(), y=by.copy(), s=bs.copy()),
            )
        return failure

    for iteration in range(1, options.max_iterations + 1):
        r_primal = a @ x - b
        r_dual = a.T @ y + s - c
        mu = float(x @ s) / n

        primal_err = float(np.linalg.norm(r_primal)) / norm_b
        dual_err = float(np.linalg.norm(r_dual)) / norm_c
        gap = abs(float(c @ x) - float(b @ y)) / (1.0 + abs(float(c @ x)))

        err = max(primal_err, dual_err, gap)
        if err < best_err:
            best_err = err
            best = (x.copy(), y.copy(), s.copy())
        if err < options.tolerance:
            return LPResult(
                status=LPStatus.OPTIMAL,
                x=x,
                objective=float(c @ x),
                iterations=iteration - 1,
                backend=_BACKEND_NAME,
                message="warm-started" if warmed else "",
                warm_start=IPMIterate(x=x.copy(), y=y.copy(), s=s.copy()),
            )
        if (
            float(np.max(np.abs(x))) > options.divergence_threshold
            or float(np.max(np.abs(y))) > options.divergence_threshold
        ):
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="iterates diverged (problem may be infeasible or unbounded)",
            ))

        # Diagonal of X S^{-1}, clipped: near a vertex some s_i underflows
        # and the raw ratio overflows, poisoning the normal matrix.
        with np.errstate(over="ignore", divide="ignore"):
            d = np.clip(x / np.maximum(s, 1e-300), 1e-12, 1e12)
        if sparse:
            normal = (a.multiply(d) @ a.T).tocsc()
            if not np.all(np.isfinite(normal.data)):
                return salvage(LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="non-finite normal equations",
                ))
            # Same Tikhonov regularisation as the dense path, applied via a
            # sparse identity so the pattern stays factorisable.
            reg = 1e-12 * (1.0 + float(normal.diagonal().sum()) / m)
            eye = sp.eye_array(m, format="csc")
            try:
                factor = splu((normal + reg * eye).tocsc())
                solve_normal = factor.solve
            except (RuntimeError, ValueError):
                try:
                    factor = splu((normal + (reg + 1e-6) * eye).tocsc())
                    solve_normal = factor.solve
                except (RuntimeError, ValueError):
                    return salvage(LPResult(
                        status=LPStatus.NUMERICAL_ERROR,
                        x=None,
                        objective=float("nan"),
                        iterations=iteration,
                        backend=_BACKEND_NAME,
                        message="normal equations not positive definite",
                    ))
        else:
            normal = (a * d) @ a.T
            if not np.all(np.isfinite(normal)):
                return salvage(LPResult(
                    status=LPStatus.NUMERICAL_ERROR,
                    x=None,
                    objective=float("nan"),
                    iterations=iteration,
                    backend=_BACKEND_NAME,
                    message="non-finite normal equations",
                ))
            normal[np.diag_indices_from(normal)] += 1e-12 * (1.0 + np.trace(normal) / m)
            try:
                factor = cho_factor(normal)
            except (LinAlgError, ValueError):
                normal[np.diag_indices_from(normal)] += 1e-6
                try:
                    factor = cho_factor(normal)
                except (LinAlgError, ValueError):
                    return salvage(LPResult(
                        status=LPStatus.NUMERICAL_ERROR,
                        x=None,
                        objective=float("nan"),
                        iterations=iteration,
                        backend=_BACKEND_NAME,
                        message="normal equations not positive definite",
                    ))
            solve_normal = lambda rhs, _f=factor: cho_solve(_f, rhs)  # noqa: E731

        def newton_direction(rxs: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
            """Solve the KKT system for a given complementarity residual.

            Raises :class:`_NumericalBreakdown` if the system degenerates
            (tiny s with large residuals — the signature of an infeasible
            or unbounded instance pushed past the numerics).
            """
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                s_safe = np.maximum(s, 1e-300)
                x_safe = np.maximum(x, 1e-300)
                rhs = -r_primal - a @ (d * r_dual) + a @ (rxs / s_safe)
                if not np.all(np.isfinite(rhs)):
                    raise _NumericalBreakdown
                dy = solve_normal(rhs)
                if not np.all(np.isfinite(dy)):
                    raise _NumericalBreakdown
                dx = d * (a.T @ dy + r_dual) - rxs / s_safe
                ds = -(rxs + s * dx) / x_safe
            if not (np.all(np.isfinite(dx)) and np.all(np.isfinite(ds))):
                raise _NumericalBreakdown
            return dx, dy, ds

        try:
            # Predictor (affine-scaling) direction.
            dx_aff, dy_aff, ds_aff = newton_direction(x * s)
            alpha_p_aff = _max_step(x, dx_aff)
            alpha_d_aff = _max_step(s, ds_aff)
            mu_aff = float(
                (x + alpha_p_aff * dx_aff) @ (s + alpha_d_aff * ds_aff)
            ) / n
            sigma = (mu_aff / mu) ** 3 if mu > 0 else 0.0

            # Corrector direction with centering.
            rxs = x * s + dx_aff * ds_aff - sigma * mu
            dx, dy, ds = newton_direction(rxs)
        except _NumericalBreakdown:
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="Newton system degenerated (likely infeasible/unbounded)",
            ))

        alpha_p = options.step_fraction * _max_step(x, dx)
        alpha_d = options.step_fraction * _max_step(s, ds)
        x = x + alpha_p * dx
        y = y + alpha_d * dy
        s = s + alpha_d * ds

        if np.any(x <= 0) or np.any(s <= 0):
            return salvage(LPResult(
                status=LPStatus.NUMERICAL_ERROR,
                x=None,
                objective=float("nan"),
                iterations=iteration,
                backend=_BACKEND_NAME,
                message="iterate left the positive orthant",
            ))

    return salvage(LPResult(
        status=LPStatus.ITERATION_LIMIT,
        x=None,
        objective=float("nan"),
        iterations=options.max_iterations,
        backend=_BACKEND_NAME,
        message="no convergence within the iteration cap",
    ))


@traced("lp.interior_point")
def solve_interior_point(
    problem: Union[LinearProgram, StandardFormLP],
    options: IPMOptions = IPMOptions(),
    warm_start: Optional[IPMIterate] = None,
) -> LPResult:
    """Solve an LP with the Mehrotra predictor–corrector method.

    Accepts either a bounded-variable :class:`LinearProgram` (converted to
    standard form internally; the returned ``x`` is in the original variable
    space) or a :class:`StandardFormLP`.

    :param problem: the LP to solve.
    :param options: solver tunables.
    :param warm_start: optional converged iterate from a previous solve of
        a similar problem; ignored when its shapes do not match.
    """
    if isinstance(problem, LinearProgram):
        standard = problem.to_standard_form()
        result = _solve_standard_form(standard, options, warm_start=warm_start)
        if result.status.ok:
            x = standard.extract_original(result.x)
            return LPResult(
                status=result.status,
                x=x,
                objective=problem.objective(x),
                iterations=result.iterations,
                backend=result.backend,
                message=result.message,
                warm_start=result.warm_start,
            )
        return result
    return _solve_standard_form(problem, options, warm_start=warm_start)
