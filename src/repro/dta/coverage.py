"""Data-division algorithms: optimal coverages of the shared data D.

Section IV divides the queried data :math:`D` into disjoint per-device
subsets :math:`C_i \\subseteq UD_i = D \\cap D_i` so every device only
touches data it already owns (no raw-data transmission).  Two greedy
objectives:

- **DTA-Workload** (Definition 1, Section IV-A): minimise
  :math:`\\max_i |C_i|` — balance the per-device workload.  The paper's
  greedy repeatedly picks the device with the *smallest* non-empty remaining
  coverage and gives it all of it.  (As printed, the argmin would loop
  forever on devices with empty coverage; restricting to non-empty sets is
  the only terminating reading — see DESIGN.md.)
- **DTA-Number** (Definition 2, Section IV-B): minimise the number of
  involved devices — the classic greedy Set Cover (pick the device covering
  the most remaining items), ratio :math:`O(\\ln n)`.

Exact solvers for both objectives are included for small instances, so the
test suite and the ablation benches can measure the greedy algorithms'
empirical ratios: min–max coverage via binary search over a max-flow
feasibility problem, and minimum set number via subset enumeration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

import networkx as nx

from repro import perf
from repro.data.items import DataCatalog
from repro.data.ownership import OwnershipMap
from repro.obs.tracer import staged

__all__ = [
    "Coverage",
    "dta_number",
    "dta_number_naive",
    "dta_workload",
    "dta_workload_naive",
    "exact_min_max_coverage",
    "exact_min_set_number",
]


@dataclass(frozen=True)
class Coverage:
    """A disjoint per-device division of a data universe.

    :param universe: D, the items that had to be covered.
    :param sets: device id → the items it processes (only non-empty sets).
    """

    universe: FrozenSet[int]
    sets: Mapping[int, FrozenSet[int]]

    def __post_init__(self) -> None:
        for device_id, items in self.sets.items():
            if not items:
                raise ValueError(f"device {device_id} has an empty coverage set")

    @property
    def involved_devices(self) -> int:
        """Number of devices that process at least one item."""
        return len(self.sets)

    def max_set_size(self) -> int:
        """:math:`\\max_i |C_i|` — the Definition 1 objective."""
        if not self.sets:
            return 0
        return max(len(items) for items in self.sets.values())

    def max_set_bytes(self, catalog: DataCatalog) -> float:
        """Largest per-device coverage in bytes."""
        if not self.sets:
            return 0.0
        return max(catalog.total_bytes(items) for items in self.sets.values())

    def device_of(self, item_id: int) -> Optional[int]:
        """The device assigned item ``item_id`` (None if outside D)."""
        for device_id, items in self.sets.items():
            if item_id in items:
                return device_id
        return None

    def violations(self, ownership: OwnershipMap) -> List[str]:
        """Definition 1/2 structural checks; empty list means valid.

        Checks (1) each set is owned by its device, (2) sets are disjoint,
        and (2') their union is exactly the universe.
        """
        problems: List[str] = []
        seen: Dict[int, int] = {}
        for device_id, items in self.sets.items():
            extra = items - ownership.items_of(device_id)
            if extra:
                problems.append(
                    f"device {device_id} assigned items it does not own: {sorted(extra)[:5]}"
                )
            outside = items - self.universe
            if outside:
                problems.append(
                    f"device {device_id} assigned items outside D: {sorted(outside)[:5]}"
                )
            for item in items:
                if item in seen:
                    problems.append(
                        f"item {item} assigned to both {seen[item]} and {device_id}"
                    )
                seen[item] = device_id
        missing = self.universe - set(seen)
        if missing:
            problems.append(f"uncovered items: {sorted(missing)[:5]}")
        return problems


def _require_coverable(universe: FrozenSet[int], ownership: OwnershipMap) -> None:
    """The universe must be jointly owned, or no coverage exists."""
    missing = ownership.uncovered(universe)
    if missing:
        raise ValueError(
            f"universe has {len(missing)} items owned by no device "
            f"(e.g. {sorted(missing)[:5]}); no coverage exists"
        )


def dta_workload_naive(
    universe: FrozenSet[int], ownership: OwnershipMap
) -> Coverage:
    """DTA-Workload greedy, per-round full rescan (the reference path).

    Each round recomputes every unselected device's remaining coverage and
    picks the smallest non-empty one — O(rounds × devices) set
    intersections.  :func:`dta_workload` routes here in reference mode; the
    optimised path maintains the coverages incrementally instead.
    """
    _require_coverable(universe, ownership)
    remaining = set(universe)
    sets: Dict[int, FrozenSet[int]] = {}
    # Sorted device ids make argmin ties deterministic.
    device_ids = sorted(ownership.device_ids)
    while remaining:
        best_device = None
        best_items: FrozenSet[int] = frozenset()
        best_size = None
        for device_id in device_ids:
            if device_id in sets:
                continue
            items = ownership.items_of(device_id) & remaining
            if not items:
                continue
            if best_size is None or len(items) < best_size:
                best_device, best_items, best_size = device_id, frozenset(items), len(items)
        if best_device is None:  # pragma: no cover - guarded by _require_coverable
            raise RuntimeError("uncoverable remainder despite coverable universe")
        sets[best_device] = best_items
        remaining -= best_items
    return Coverage(universe=frozenset(universe), sets=sets)


def _dta_workload_lazy(
    universe: FrozenSet[int], ownership: OwnershipMap
) -> Coverage:
    """DTA-Workload via incremental coverages and a size-keyed lazy heap.

    Instead of re-intersecting every device against ``remaining`` each
    round, the per-device remaining coverages are maintained in place: when
    a device is selected, its items are removed from the other owners'
    coverages through an inverted item → owners index, and each shrunken
    device is re-keyed on a ``(size, device_id)`` min-heap.  Entries whose
    recorded size no longer matches the device's current coverage are stale
    and skipped on pop.  Total work is O(Σ_i |UD_i| log) instead of the
    rescan's O(rounds × devices) intersections.

    The heap key ``(size, device_id)`` reproduces the reference argmin
    exactly: smallest coverage first, ties to the smallest device id, so
    the selection sequence — and therefore the output — is identical to
    :func:`dta_workload_naive`.
    """
    _require_coverable(universe, ownership)
    remaining = set(universe)
    sets: Dict[int, FrozenSet[int]] = {}
    current: Dict[int, Set[int]] = {}
    owners: Dict[int, List[int]] = {}
    for device_id in sorted(ownership.device_ids):
        items = ownership.items_of(device_id) & remaining
        if items:
            current[device_id] = set(items)
            for item in items:
                owners.setdefault(item, []).append(device_id)
    heap = [(len(items), device_id) for device_id, items in current.items()]
    heapq.heapify(heap)
    while remaining:
        if not heap:  # pragma: no cover - guarded by _require_coverable
            raise RuntimeError("uncoverable remainder despite coverable universe")
        size, device_id = heapq.heappop(heap)
        items = current.get(device_id)
        if items is None or len(items) != size:
            continue  # stale: device selected/emptied or coverage shrank
        taken = frozenset(items)
        sets[device_id] = taken
        del current[device_id]
        remaining -= taken
        affected = set()
        for item in taken:
            for other in owners.pop(item):
                other_items = current.get(other)
                if other_items is not None:
                    other_items.discard(item)
                    affected.add(other)
        for other in affected:
            other_items = current[other]
            if other_items:
                heapq.heappush(heap, (len(other_items), other))
            else:
                del current[other]  # empty coverages are never selectable
    return Coverage(universe=frozenset(universe), sets=sets)


@staged("dta")
def dta_workload(universe: FrozenSet[int], ownership: OwnershipMap) -> Coverage:
    """DTA-Workload greedy (Section IV-A): smallest non-empty coverage first.

    Routes to the incremental lazy-heap implementation, or to the per-round
    rescan reference (:func:`dta_workload_naive`) in reference mode.  Both
    produce the identical coverage.

    :param universe: D, the items to divide.
    :param ownership: per-device holdings.
    :returns: a valid coverage.
    :raises ValueError: if some item of D is owned by nobody.
    """
    if perf.reference_mode():
        return dta_workload_naive(universe, ownership)
    return _dta_workload_lazy(universe, ownership)


def dta_number_naive(
    universe: FrozenSet[int], ownership: OwnershipMap
) -> Coverage:
    """DTA-Number greedy, per-round full rescan (the reference path).

    Each round recomputes every unselected device's marginal coverage and
    picks the largest.  :func:`dta_number` routes here in reference mode;
    the optimised path uses CELF-style lazy evaluation instead.
    """
    _require_coverable(universe, ownership)
    remaining = set(universe)
    sets: Dict[int, FrozenSet[int]] = {}
    device_ids = sorted(ownership.device_ids)
    while remaining:
        best_device = None
        best_items: FrozenSet[int] = frozenset()
        for device_id in device_ids:
            if device_id in sets:
                continue
            items = ownership.items_of(device_id) & remaining
            if len(items) > len(best_items):
                best_device, best_items = device_id, frozenset(items)
        if best_device is None:  # pragma: no cover - guarded by _require_coverable
            raise RuntimeError("uncoverable remainder despite coverable universe")
        sets[best_device] = best_items
        remaining -= best_items
    return Coverage(universe=frozenset(universe), sets=sets)


def _dta_number_lazy(
    universe: FrozenSet[int], ownership: OwnershipMap
) -> Coverage:
    """DTA-Number with CELF-style lazy marginal-gain evaluation.

    The classic accelerated greedy for submodular maximisation (Leskovec et
    al., KDD 2007): cached gains are upper bounds because marginal coverage
    only shrinks as ``remaining`` does, so a max-heap entry re-evaluated at
    the top of the heap that *stays* on top is the true argmax — most
    devices are never re-evaluated at all.  The O(ln n) approximation
    argument of Algorithm 1 depends only on picking a max-gain device each
    round, which this does.

    The heap key ``(-gain, device_id)`` reproduces the reference argmax
    exactly (largest gain, ties to the smallest device id), so the
    selection sequence — and the output — is identical to
    :func:`dta_number_naive`.
    """
    _require_coverable(universe, ownership)
    remaining = set(universe)
    sets: Dict[int, FrozenSet[int]] = {}
    items_of = ownership.items_of
    heap = []
    for device_id in sorted(ownership.device_ids):
        items = items_of(device_id) & remaining
        if items:
            # (neg gain, device id, evaluation stamp, evaluated coverage);
            # device_id is unique, so later fields never enter comparisons.
            heap.append((-len(items), device_id, 0, frozenset(items)))
    heapq.heapify(heap)
    rounds = 0
    while remaining:
        if not heap:  # pragma: no cover - guarded by _require_coverable
            raise RuntimeError("uncoverable remainder despite coverable universe")
        _, device_id, stamp, items = heapq.heappop(heap)
        if stamp == rounds:  # gain evaluated against the current remainder
            sets[device_id] = items
            remaining -= items
            rounds += 1
            continue
        fresh = items_of(device_id) & remaining
        if fresh:
            heapq.heappush(heap, (-len(fresh), device_id, rounds, frozenset(fresh)))
    return Coverage(universe=frozenset(universe), sets=sets)


@staged("dta")
def dta_number(universe: FrozenSet[int], ownership: OwnershipMap) -> Coverage:
    """DTA-Number greedy (Section IV-B, Algorithm 1): greedy Set Cover.

    Routes to the CELF lazy-greedy implementation, or to the per-round
    rescan reference (:func:`dta_number_naive`) in reference mode.  Both
    produce the identical coverage.

    :param universe: D, the items to divide.
    :param ownership: per-device holdings.
    :returns: a valid coverage using few devices (ratio O(ln n)).
    :raises ValueError: if some item of D is owned by nobody.
    """
    if perf.reference_mode():
        return dta_number_naive(universe, ownership)
    return _dta_number_lazy(universe, ownership)


def _maxflow_feasible(
    universe: Tuple[int, ...],
    ownership: OwnershipMap,
    device_ids: Tuple[int, ...],
    cap: int,
) -> Optional[Dict[int, FrozenSet[int]]]:
    """Assignment with every device handling ≤ cap items, via max-flow.

    Returns the per-device sets if a full assignment exists, else None.
    """
    graph = nx.DiGraph()
    source, sink = "s", "t"
    for item in universe:
        graph.add_edge(source, ("item", item), capacity=1)
    for device_id in device_ids:
        graph.add_edge(("dev", device_id), sink, capacity=cap)
    for item in universe:
        for owner in ownership.owners_of(item):
            if owner in device_ids:
                graph.add_edge(("item", item), ("dev", owner), capacity=1)
    value, flow = nx.maximum_flow(graph, source, sink)
    if value < len(universe):
        return None
    sets: Dict[int, set] = {}
    for item in universe:
        for target, amount in flow[("item", item)].items():
            if amount > 0 and isinstance(target, tuple) and target[0] == "dev":
                sets.setdefault(target[1], set()).add(item)
    return {device: frozenset(items) for device, items in sets.items() if items}


def exact_min_max_coverage(
    universe: FrozenSet[int], ownership: OwnershipMap
) -> Coverage:
    """Exact solution of P3 (min–max coverage size), via flow feasibility.

    Binary-searches the optimal ``maxsize`` and certifies each candidate
    with a bipartite max-flow (item → owning device, device capacity =
    maxsize).  Exponential nowhere — usable at moderate sizes — but the
    greedy is the algorithm under study; this is the measuring stick.

    :param universe: D, the items to divide.
    :param ownership: per-device holdings.
    :raises ValueError: if some item of D is owned by nobody.
    """
    _require_coverable(universe, ownership)
    items = tuple(sorted(universe))
    if not items:
        return Coverage(universe=frozenset(), sets={})
    device_ids = tuple(sorted(ownership.device_ids))
    low, high = 1, len(items)
    best: Optional[Dict[int, FrozenSet[int]]] = None
    while low <= high:
        mid = (low + high) // 2
        sets = _maxflow_feasible(items, ownership, device_ids, mid)
        if sets is not None:
            best = sets
            high = mid - 1
        else:
            low = mid + 1
    if best is None:  # pragma: no cover - cap=len(items) is always feasible
        raise RuntimeError("flow certification failed unexpectedly")
    return Coverage(universe=frozenset(universe), sets=best)


def exact_min_set_number(
    universe: FrozenSet[int],
    ownership: OwnershipMap,
    max_devices: int = 20,
) -> Coverage:
    """Exact minimum-set-number coverage by subset enumeration (small n).

    :param universe: D, the items to divide.
    :param ownership: per-device holdings.
    :param max_devices: refuse instances with more candidate devices.
    :raises ValueError: if uncoverable, or too many devices to enumerate.
    """
    _require_coverable(universe, ownership)
    if not universe:
        return Coverage(universe=frozenset(), sets={})
    candidates = [
        device_id
        for device_id in sorted(ownership.device_ids)
        if ownership.items_of(device_id) & universe
    ]
    if len(candidates) > max_devices:
        raise ValueError(
            f"{len(candidates)} candidate devices exceeds the enumeration "
            f"limit ({max_devices}); use dta_number"
        )
    for size in range(1, len(candidates) + 1):
        for combo in itertools.combinations(candidates, size):
            union = frozenset()
            for device_id in combo:
                union |= ownership.items_of(device_id) & universe
            if union >= universe:
                # Materialise disjoint sets: first owner in the combo wins.
                remaining = set(universe)
                sets: Dict[int, FrozenSet[int]] = {}
                for device_id in combo:
                    take = ownership.items_of(device_id) & remaining
                    if take:
                        sets[device_id] = frozenset(take)
                        remaining -= take
                return Coverage(universe=frozenset(universe), sets=sets)
    raise RuntimeError("unreachable: coverable universe with no covering subset")
