"""Divisible-task assignment (Section IV): data division and rearrangement."""

from repro.dta.coverage import (
    Coverage,
    dta_number,
    dta_workload,
    exact_min_max_coverage,
    exact_min_set_number,
)
from repro.dta.rearrange import RearrangedPlan, rearrange_tasks
from repro.dta.accounting import DTAOutcome, evaluate_plan, run_dta

__all__ = [
    "Coverage",
    "DTAOutcome",
    "RearrangedPlan",
    "dta_number",
    "dta_workload",
    "evaluate_plan",
    "exact_min_max_coverage",
    "exact_min_set_number",
    "rearrange_tasks",
    "run_dta",
]
