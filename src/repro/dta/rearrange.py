"""Task rearrangement (Section IV-C).

Given a coverage :math:`\\{C_i\\}`, each original divisible task
:math:`\\mathcal{T}_{rl}` is split into sub-tasks: device *i* receives the
task information (:math:`op_{rl}, C_{rl}, T_{rl}`) whenever
:math:`C_i \\cap (LD_{rl} \\cup ED_{rl}) \\ne \\emptyset`, and processes the
intersection locally.  Every sub-task therefore has *only local input data*
(α = |C_i ∩ required|, β = 0): the raw data never moves — only the small
operation descriptions and partial results do.

The sub-tasks are then scheduled with LP-HTA (Section III) and the partial
results aggregated, which :mod:`repro.dta.accounting` prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.task import Task
from repro.data.items import DataCatalog
from repro.dta.coverage import Coverage
from repro.units import KB

__all__ = [
    "DEFAULT_OP_INFO_BYTES",
    "DEFAULT_SUBTASK_RESOURCE",
    "RearrangedPlan",
    "rearrange_tasks",
]

#: Size of one transmitted task description (op, C, T) — a couple of KB of
#: serialized operation info, negligible next to the raw data it replaces.
DEFAULT_OP_INFO_BYTES = 2 * KB

#: Resource demand of one sub-task.  Divisible tasks are streaming
#: aggregations (the paper's Sum/Count examples) over data *already stored*
#: on the device, so their working set is the accumulator — a small constant
#: — rather than the raw input size that drives holistic tasks' C_ij.
DEFAULT_SUBTASK_RESOURCE = 0.01


@dataclass(frozen=True)
class RearrangedPlan:
    """The sub-task schedule produced by task rearrangement.

    :param coverage: the data division driving the rearrangement.
    :param subtasks: the new per-device tasks (β = 0 by construction).
    :param parents: for each sub-task, the original task it contributes to
        (parallel to ``subtasks``).
    :param op_info_bytes: size of one transmitted task description.
    """

    coverage: Coverage
    subtasks: Tuple[Task, ...]
    parents: Tuple[Task, ...]
    op_info_bytes: float = DEFAULT_OP_INFO_BYTES

    def __post_init__(self) -> None:
        if len(self.subtasks) != len(self.parents):
            raise ValueError("subtasks and parents must be parallel")
        for subtask in self.subtasks:
            if subtask.external_bytes != 0:
                raise ValueError(
                    "rearranged sub-tasks must have no external data "
                    f"(got {subtask.task_id})"
                )

    @property
    def num_subtasks(self) -> int:
        """Number of generated sub-tasks."""
        return len(self.subtasks)

    def subtasks_of_parent(self, parent: Task) -> List[int]:
        """Sub-task rows contributing to ``parent``."""
        return [
            row for row, p in enumerate(self.parents) if p.task_id == parent.task_id
        ]

    def executor_device_ids(self) -> Tuple[int, ...]:
        """Devices that received at least one sub-task (sorted)."""
        return tuple(sorted({subtask.owner_device_id for subtask in self.subtasks}))


def rearrange_tasks(
    tasks: Sequence[Task],
    coverage: Coverage,
    catalog: DataCatalog,
    op_info_bytes: float = DEFAULT_OP_INFO_BYTES,
    subtask_resource_demand: float = DEFAULT_SUBTASK_RESOURCE,
) -> RearrangedPlan:
    """Split divisible tasks into per-device local sub-tasks.

    :param tasks: the original divisible tasks (each must declare its
        ``required_items``).
    :param coverage: a valid division of the tasks' data universe.
    :param catalog: item sizes.
    :param op_info_bytes: size of one transmitted task description.
    :param subtask_resource_demand: C of each sub-task (see
        :data:`DEFAULT_SUBTASK_RESOURCE` for why this is a small constant
        rather than input-proportional).
    :returns: the rearranged plan.
    :raises ValueError: if a task is not divisible, or requires items the
        coverage does not assign.
    """
    if subtask_resource_demand < 0:
        # The one Task invariant a caller could break from here; the
        # fast constructor below skips per-subtask validation.
        raise ValueError("resource_demand must be non-negative")
    indices: Dict[int, int] = {}  # next sub-task index per executor device
    subtasks: List[Task] = []
    parents: List[Task] = []
    coverage_sets = sorted(coverage.sets.items())  # hoisted: same per task
    sizes = catalog.sizes()

    # Inverted item -> device index: coverage sets are disjoint by
    # Definition 1/2, so each required item names exactly one executor and
    # a task's parts can be collected in O(|required|) instead of scanning
    # every device's set.  An overlapping (invalid but unvalidated)
    # coverage emits one sub-task per overlapping set under the scan; only
    # the scan reproduces that, so the index is abandoned entirely then.
    item_owner: Dict[int, int] = {}
    overlapping = False
    for device_id, owned in coverage_sets:
        for item in owned:
            if item in item_owner:
                overlapping = True
            item_owner[item] = device_id

    for task in tasks:
        if not task.divisible:
            raise ValueError(f"task {task.task_id} is not divisible")
        if not task.required_items:
            continue  # nothing to compute
        missing = task.required_items - coverage.universe
        if missing:
            raise ValueError(
                f"task {task.task_id} requires items outside the coverage "
                f"universe: {sorted(missing)[:5]}"
            )
        if overlapping:
            parts = [
                (device_id, owned & task.required_items)
                for device_id, owned in coverage_sets
            ]
        else:
            by_device: Dict[int, set] = {}
            for item in task.required_items:
                by_device.setdefault(item_owner[item], set()).add(item)
            # Sorted by device id — the exact emission order of the scan.
            parts = sorted(by_device.items())
        for device_id, part in parts:
            if not part:
                continue
            part = frozenset(part)
            # Same order-sensitive float sum total_bytes computes (map
            # iterates ``part`` exactly as the genexpr would), without a
            # method call per sub-task.
            part_bytes = sum(map(sizes.__getitem__, part))
            index = indices.get(device_id, 0)
            indices[device_id] = index + 1
            # Field-for-field the Task the dataclass constructor builds;
            # __init__/__post_init__ are skipped because every validated
            # invariant holds by construction (part_bytes >= 0, no
            # external data, the parent's deadline is already positive).
            subtask = object.__new__(Task)
            object.__setattr__(subtask, "owner_device_id", device_id)
            object.__setattr__(subtask, "index", index)
            object.__setattr__(subtask, "local_bytes", part_bytes)
            object.__setattr__(subtask, "external_bytes", 0.0)
            object.__setattr__(subtask, "external_source", None)
            object.__setattr__(subtask, "resource_demand", subtask_resource_demand)
            object.__setattr__(subtask, "deadline_s", task.deadline_s)
            object.__setattr__(subtask, "divisible", True)
            object.__setattr__(subtask, "required_items", part)
            object.__setattr__(subtask, "operation", task.operation)
            subtasks.append(subtask)
            parents.append(task)
    return RearrangedPlan(
        coverage=coverage,
        subtasks=tuple(subtasks),
        parents=tuple(parents),
        op_info_bytes=op_info_bytes,
    )
