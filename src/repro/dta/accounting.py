"""Energy and time accounting for rearranged divisible-task schedules.

Section IV-C states the pay-off qualitatively: "only the task information
and partial results are required to transmit, much energy will be saved".
This module makes the accounting concrete (documented here because the paper
does not spell it out):

- **Sub-task execution** — the sub-tasks are scheduled with LP-HTA and
  charged its Section II costs (they carry no external data, so this is
  almost entirely local computation).
- **Task-information distribution** — for every (parent task, executor)
  pair, the requester uploads one op description to its base station and the
  executor downloads it (plus a BS–BS hop when they sit in different
  clusters).
- **Partial-result collection** — each sub-task's result, of size
  η(sub-input), travels from its executor to the *requester's* base station
  (device uplink, plus a BS–BS hop across clusters; a BS–cloud hop if LP-HTA
  put the sub-task on the cloud).
- **Final-result delivery** — the aggregate, of size η(parent input), is
  downloaded by the requesting device.

Processing time follows the paper's parallel-execution argument for Fig. 6a:
devices compute concurrently, so the dominant term is the *busiest* device's
total sub-task latency, plus the (maximal) op-distribution, partial-upload
and delivery stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Literal, Optional, Sequence, Tuple

from repro.context import RunContext
from repro.core.assignment import Assignment, Subsystem
from repro.core.hta import HTAReport, LPHTAOptions, lp_hta, lp_hta_batch
from repro.core.task import Task
from repro.data.items import DataCatalog
from repro.data.ownership import OwnershipMap
from repro.dta.coverage import Coverage, dta_number, dta_workload
from repro.dta.rearrange import RearrangedPlan, rearrange_tasks
from repro.system.topology import MECSystem
from repro.units import BITS_PER_BYTE

__all__ = [
    "DTAOutcome",
    "evaluate_plan",
    "evaluate_plans",
    "prepare_dta",
    "run_dta",
]


@dataclass(frozen=True)
class DTAOutcome:
    """The priced result of a divisible-task rearrangement.

    :param coverage: the data division used.
    :param plan: the rearranged sub-task plan.
    :param hta_report: LP-HTA's schedule of the sub-tasks.
    :param execution_energy_j: Section II energy of the sub-task schedule.
    :param op_info_energy_j: energy to distribute the task descriptions.
    :param partial_result_energy_j: energy to collect partial results.
    :param final_result_energy_j: energy to deliver the aggregates.
    :param processing_time_s: parallel makespan (see module docstring).
    """

    coverage: Coverage
    plan: RearrangedPlan
    hta_report: HTAReport
    execution_energy_j: float
    op_info_energy_j: float
    partial_result_energy_j: float
    final_result_energy_j: float
    processing_time_s: float

    @property
    def assignment(self) -> Assignment:
        """The LP-HTA assignment of the sub-tasks."""
        return self.hta_report.assignment

    @property
    def total_energy_j(self) -> float:
        """Total system energy of the divisible-task pipeline."""
        return (
            self.execution_energy_j
            + self.op_info_energy_j
            + self.partial_result_energy_j
            + self.final_result_energy_j
        )

    @property
    def involved_devices(self) -> int:
        """Devices participating in the coverage (the Fig. 6b metric)."""
        return self.coverage.involved_devices


def _op_info_costs(
    system: MECSystem, plan: RearrangedPlan
) -> Tuple[float, float]:
    """(energy, max time) of distributing task descriptions.

    The description size is one per-plan constant, so the radio costs are
    pure functions of the device involved: they are memoised per device
    (and the BS–BS hop computed once), which changes nothing about the
    values or the accumulation order.
    """
    seen = set()
    energy = 0.0
    max_time = 0.0
    size = plan.op_info_bytes
    upload: Dict[int, Tuple[float, float]] = {}
    download: Dict[int, Tuple[float, float]] = {}
    hop_e = system.bs_bs_link.transfer_energy_j(size)
    hop_t = system.bs_bs_link.transfer_time_s(size)
    same_cluster: Dict[Tuple[int, int], bool] = {}
    for subtask, parent in zip(plan.subtasks, plan.parents):
        key = (parent.task_id, subtask.owner_device_id)
        if key in seen:
            continue
        seen.add(key)
        requester_id = parent.owner_device_id
        executor_id = subtask.owner_device_id
        up = upload.get(requester_id)
        if up is None:
            wireless = system.device(requester_id).wireless
            up = (wireless.upload_energy_j(size), wireless.upload_time_s(size))
            upload[requester_id] = up
        energy_one, time_one = up
        if executor_id != requester_id:
            pair = (requester_id, executor_id)
            same = same_cluster.get(pair)
            if same is None:
                same = system.same_cluster(requester_id, executor_id)
                same_cluster[pair] = same
            if not same:
                energy_one += hop_e
                time_one += hop_t
            down = download.get(executor_id)
            if down is None:
                wireless = system.device(executor_id).wireless
                down = (
                    wireless.download_energy_j(size),
                    wireless.download_time_s(size),
                )
                download[executor_id] = down
            energy_one += down[0]
            time_one += down[1]
        energy += energy_one
        max_time = max(max_time, time_one)
    return energy, max_time


def _partial_result_costs(
    system: MECSystem, plan: RearrangedPlan, assignment: Assignment
) -> Tuple[float, float]:
    """(energy, max time) of collecting partial results at requesters.

    Cluster co-residency is memoised per (executor, requester) pair.  The
    per-row radio costs are the radio/link formulas inlined — the same
    divisions and products in the same order (time on air first, energy =
    power × time), so every float matches the method chain bit for bit —
    because three method hops per sub-task row dominate this accounting
    pass on large plans.
    """
    result_model = system.parameters.result_size
    energy = 0.0
    max_time = 0.0
    same_cluster: Dict[Tuple[int, int], bool] = {}
    cloud_link = system.bs_cloud_link
    hop_link = system.bs_bs_link
    # Per-executor (tx_power_w, upload_rate_bps), resolved once.
    radio: Dict[int, Tuple[float, float]] = {}
    for row, (subtask, parent) in enumerate(zip(plan.subtasks, plan.parents)):
        decision = assignment.decisions[row]
        if decision is Subsystem.CANCELLED:
            continue
        partial = result_model.result_bytes(subtask.input_bytes)
        executor_id = subtask.owner_device_id
        energy_one = 0.0
        time_one = 0.0
        if decision is Subsystem.DEVICE:
            # Result sits on the executor; push it up to its station.
            up = radio.get(executor_id)
            if up is None:
                wireless = system.device(executor_id).wireless
                up = (wireless.tx_power_w, wireless.upload_rate_bps)
                radio[executor_id] = up
            air_s = 0.0 if partial == 0 else partial * BITS_PER_BYTE / up[1]
            energy_one += up[0] * air_s
            time_one += air_s
        elif decision is Subsystem.CLOUD:
            # Result sits on the cloud; pull it down to the edge.
            energy_one += cloud_link.energy_per_byte_j * partial
            if partial != 0:
                time_one += cloud_link.latency_s + (
                    partial * BITS_PER_BYTE / cloud_link.bandwidth_bps
                )
        # (STATION: the partial already sits on the executor's station.)
        pair = (executor_id, parent.owner_device_id)
        same = same_cluster.get(pair)
        if same is None:
            same = system.same_cluster(*pair)
            same_cluster[pair] = same
        if not same:
            energy_one += hop_link.energy_per_byte_j * partial
            if partial != 0:
                time_one += hop_link.latency_s + (
                    partial * BITS_PER_BYTE / hop_link.bandwidth_bps
                )
        energy += energy_one
        max_time = max(max_time, time_one)
    return energy, max_time


def _final_result_costs(
    system: MECSystem, plan: RearrangedPlan, catalog: DataCatalog
) -> Tuple[float, float]:
    """(energy, max time) of delivering aggregates to requesters."""
    result_model = system.parameters.result_size
    energy = 0.0
    max_time = 0.0
    for parent in {p.task_id: p for p in plan.parents}.values():
        total_input = catalog.total_bytes(parent.required_items)
        final = result_model.result_bytes(total_input)
        requester = system.device(parent.owner_device_id)
        energy += requester.wireless.download_energy_j(final)
        max_time = max(max_time, requester.wireless.download_time_s(final))
    return energy, max_time


def _busiest_executor_time(plan: RearrangedPlan, assignment: Assignment) -> float:
    """Max over devices of their summed sub-task latencies (parallel model)."""
    busy: Dict[int, float] = {}
    for row, subtask in enumerate(plan.subtasks):
        latency = assignment.task_latency_s(row)
        if latency is None:
            continue
        owner = subtask.owner_device_id
        busy[owner] = busy.get(owner, 0.0) + latency
    return max(busy.values()) if busy else 0.0


def evaluate_plan(
    system: MECSystem,
    plan: RearrangedPlan,
    catalog: DataCatalog,
    options: Optional[LPHTAOptions] = None,
    context: Optional[RunContext] = None,
    hta_report: Optional[HTAReport] = None,
) -> DTAOutcome:
    """Schedule a rearranged plan with LP-HTA and price the whole pipeline.

    :param system: the MEC system.
    :param plan: the rearranged sub-tasks.
    :param catalog: item sizes (for final-result sizing).
    :param options: LP-HTA tunables for the sub-task schedule; defaults to
        the context's LP settings.
    :param context: run configuration threaded through to LP-HTA.
    :param hta_report: optional precomputed sub-task schedule (from the
        batched :func:`evaluate_plans`); when given, the LP-HTA call is
        skipped and pricing runs on it unchanged.
    """
    if hta_report is None:
        hta_report = lp_hta(system, list(plan.subtasks), options, context=context)
    assignment = hta_report.assignment

    execution_energy = assignment.total_energy_j()
    op_energy, op_time = _op_info_costs(system, plan)
    partial_energy, partial_time = _partial_result_costs(system, plan, assignment)
    final_energy, final_time = _final_result_costs(system, plan, catalog)
    processing_time = (
        op_time + _busiest_executor_time(plan, assignment) + partial_time + final_time
    )

    return DTAOutcome(
        coverage=plan.coverage,
        plan=plan,
        hta_report=hta_report,
        execution_energy_j=execution_energy,
        op_info_energy_j=op_energy,
        partial_result_energy_j=partial_energy,
        final_result_energy_j=final_energy,
        processing_time_s=processing_time,
    )


def evaluate_plans(
    jobs: Sequence[Tuple[MECSystem, RearrangedPlan, DataCatalog]],
    options: Optional[LPHTAOptions] = None,
    context: Optional[RunContext] = None,
) -> Tuple[DTAOutcome, ...]:
    """Price many rearranged plans with one batched LP-HTA mega-solve.

    The sub-task schedules of independent plans are independent P2
    instances, so the whole candidate list clears in one block-diagonal
    Step-1 solve (:func:`repro.core.hta.lp_hta_batch`) instead of a Python
    loop of :func:`evaluate_plan` calls.  Results are identical plan for
    plan; when batching is disabled the underlying call degenerates to the
    sequential loop.

    :param jobs: (system, plan, catalog) triples, each priced exactly as
        :func:`evaluate_plan` would.
    :param options: LP-HTA tunables shared by every job.
    :param context: run configuration threaded through to LP-HTA.
    """
    reports = lp_hta_batch(
        [(system, list(plan.subtasks)) for system, plan, _ in jobs],
        options,
        context=context,
    )
    return tuple(
        evaluate_plan(
            system, plan, catalog, options, context=context, hta_report=report
        )
        for (system, plan, catalog), report in zip(jobs, reports)
    )


def prepare_dta(
    tasks: Sequence[Task],
    ownership: OwnershipMap,
    catalog: DataCatalog,
    objective: Literal["workload", "number"] = "workload",
    universe: Optional[frozenset] = None,
) -> RearrangedPlan:
    """The combinatorial half of DTA: divide the data and rearrange.

    Pure and LP-free — everything up to (but excluding) the LP-HTA
    schedule, so batch callers can prepare every candidate plan first and
    clear the LP half in one mega-solve via :func:`evaluate_plans`.

    :param tasks: the divisible tasks.
    :param ownership: per-device data holdings.
    :param catalog: item sizes.
    :param objective: ``"workload"`` for DTA-Workload (Section IV-A) or
        ``"number"`` for DTA-Number (Section IV-B).
    :param universe: override for D (defaults to the union of the tasks'
        required items).
    """
    if universe is None:
        required = set()
        for task in tasks:
            required |= task.required_items
        universe = frozenset(required)
    if objective == "workload":
        coverage = dta_workload(universe, ownership)
    elif objective == "number":
        coverage = dta_number(universe, ownership)
    else:
        raise ValueError(f"unknown DTA objective {objective!r}")
    return rearrange_tasks(tasks, coverage, catalog)


def run_dta(
    system: MECSystem,
    tasks: Sequence[Task],
    ownership: OwnershipMap,
    catalog: DataCatalog,
    objective: Literal["workload", "number"] = "workload",
    options: Optional[LPHTAOptions] = None,
    universe: Optional[frozenset] = None,
    context: Optional[RunContext] = None,
) -> DTAOutcome:
    """End-to-end divisible-task assignment: divide, rearrange, schedule, price.

    :param system: the MEC system.
    :param tasks: the divisible tasks.
    :param ownership: per-device data holdings.
    :param catalog: item sizes.
    :param objective: ``"workload"`` for DTA-Workload (Section IV-A) or
        ``"number"`` for DTA-Number (Section IV-B).
    :param options: LP-HTA tunables for the sub-task schedule; defaults to
        the context's LP settings.
    :param universe: override for D (defaults to the union of the tasks'
        required items).
    :param context: run configuration threaded through to LP-HTA.
    """
    plan = prepare_dta(tasks, ownership, catalog, objective, universe)
    return evaluate_plan(system, plan, catalog, options, context=context)
