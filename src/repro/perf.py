"""Session-wide performance mode: optimised (default) vs reference.

The perf work in this repository keeps the original implementations around
as *reference paths*: the scalar cost pipeline (``costs_config``), the
per-task candidate filtering in the workload generator, the per-row metric
loops on :class:`~repro.core.assignment.Assignment`, and the seed version
of the structured LP solver.  They serve two purposes:

- differential tests assert the optimised paths are *bit-identical* to the
  reference paths, and
- ``scripts/bench_perf.py`` times the optimised pipeline against the
  reference pipeline, so the reported speedup measures this work rather
  than whatever machine the benchmark happens to run on.

``perf_config(reference=True)`` flips every such dispatch at once (the
cost-table flags live in :func:`repro.core.costs.costs_config` and are
toggled separately, since they predate this switch and are independently
useful).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["perf_config", "reference_mode"]

_REFERENCE = False


def reference_mode() -> bool:
    """Whether the original (pre-optimisation) code paths are selected."""
    return _REFERENCE


@contextmanager
def perf_config(*, reference: Optional[bool] = None) -> Iterator[None]:
    """Temporarily select the reference or optimised code paths.

    :param reference: ``True`` routes the generator, assignment metrics and
        structured solver through their original implementations.  Results
        are identical either way; only speed differs.
    """
    global _REFERENCE
    previous = _REFERENCE
    if reference is not None:
        _REFERENCE = reference
    try:
        yield
    finally:
        _REFERENCE = previous
