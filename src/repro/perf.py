"""Performance mode: optimised (default) vs reference, now context-backed.

The perf work in this repository keeps the original implementations around
as *reference paths*: the scalar cost pipeline (``costs_config``), the
per-task candidate filtering in the workload generator, the per-row metric
loops on :class:`~repro.core.assignment.Assignment`, and the seed version
of the structured LP solver.  They serve two purposes:

- differential tests assert the optimised paths are *bit-identical* to the
  reference paths, and
- ``scripts/bench_perf.py`` times the optimised pipeline against the
  reference pipeline, so the reported speedup measures this work rather
  than whatever machine the benchmark happens to run on.

The mode used to live in a module global, which fork workers inherited but
spawn workers silently dropped.  It is now the ``reference`` field of the
active :class:`~repro.context.RunContext`; this module remains as a thin
shim so every existing ``perf_config(...)`` / ``reference_mode()`` call
keeps working.  New code should prefer passing a ``RunContext`` explicitly
(see :mod:`repro.registry`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.context import current_context, use_context

__all__ = ["perf_config", "reference_mode"]


def reference_mode() -> bool:
    """Whether the original (pre-optimisation) code paths are selected."""
    return current_context().reference


@contextmanager
def perf_config(*, reference: Optional[bool] = None) -> Iterator[None]:
    """Temporarily select the reference or optimised code paths.

    A shim over the context stack: activates a copy of the current
    :class:`~repro.context.RunContext` with ``reference`` replaced.

    :param reference: ``True`` routes the generator, assignment metrics and
        structured solver through their original implementations.  Results
        are identical either way; only speed differs.
    """
    context = current_context()
    if reference is not None:
        context = context.replace(reference=reference)
    with use_context(context):
        yield
